"""The warehouse assembly: Provider + Product as one interclass component.

The paper's stock-control example (sec. 3.2) actually spans two classes —
``Product`` holds a pointer to its ``Provider`` — which makes it the
natural subject for the interclass extension (sec. 6 future work).  This
assembly models the provider/product lifecycle as one transaction flow:

    create provider → create product (pointing at the provider) →
    updates / show → insert into the stock DB → remove → destroy

Role-typed parameters (``prv: Provider*``) resolve to the live provider
object of the same transaction, exercising the actual object flow between
the two classes.
"""

from __future__ import annotations

from . import specs  # noqa: F401  (ensures __tspec__ is attached)
from ..interclass.builder import AssemblyBuilder
from ..interclass.model import AssemblySpec
from .product import Product, Provider


def build_warehouse_assembly() -> AssemblySpec:
    """The Provider/Product assembly: 8 nodes, 14 links."""
    builder = (
        AssemblyBuilder("Warehouse")
        .role("provider", Provider)
        .role("product", Product)
        # Birth: the provider always exists first (products reference it).
        .node("new_provider", ["provider.Provider"], start=True)
        # All three Product constructor overloads are alternatives; the
        # 4-argument one receives the live provider via a role reference.
        .node("new_product", ["product.Product"])
        .node("update", ["product.UpdateName", "product.UpdateQty",
                         "product.UpdatePrice", "product.UpdateProv"])
        .node("show", ["product.ShowAttributes"])
        .node("insert", ["product.InsertProduct"])
        .node("remove", ["product.RemoveProduct"])
        .node("drop_product", ["product.~Product"])
        .node("done", ["provider.~Provider"], end=True)
    )
    for source, target in (
        ("new_provider", "new_product"),
        ("new_product", "update"),
        ("new_product", "insert"),
        ("new_product", "show"),
        ("update", "insert"),
        ("update", "show"),
        ("insert", "show"),
        ("insert", "remove"),
        ("show", "remove"),
        ("show", "drop_product"),
        ("remove", "drop_product"),
        ("update", "drop_product"),
        ("drop_product", "done"),
        ("new_product", "drop_product"),
    ):
        builder.edge(source, target)
    return builder.build()


WAREHOUSE_ASSEMBLY = build_warehouse_assembly()

#: The classes playing each role, for the AssemblyExecutor.
WAREHOUSE_ROLES = {"provider": Provider, "product": Product}
