"""Embedded t-specs for the subject components.

A self-testable component carries its test specification (sec. 3.2); this
module builds the :class:`~repro.tspec.model.ClassSpec` of every component
in the package and attaches it as ``__tspec__`` — importing
``repro.components`` therefore yields classes that are self-testable out of
the box.

Model sizes are engineered to reproduce the experiment's reported scale:
the ``CSortableObList`` model has **16 nodes and 43 links**, exactly the
figures of sec. 4 ("a test model composed of 16 nodes and 43 links").  The
base ``CObList`` model is that model minus the sorting/extremum nodes.

Element values are integers (MFC stores object pointers; ordering needs
comparable values — a substitution recorded in DESIGN.md §2).
"""

from __future__ import annotations

from ..core.domains import (
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    StringDomain,
)
from ..tspec.builder import SpecBuilder
from ..tspec.model import ClassSpec
from .account import BankAccount
from .oblist import CObList
from .product import Product, Provider
from .sortable_oblist import CSortableObList
from .stack import BoundedStack

#: Value domain of list elements.
ELEMENT = RangeDomain(-50, 50)
#: Value domain of POSITION arguments (small, so they often hit real nodes).
POSITION = RangeDomain(0, 4)


def _oblist_interface(builder: SpecBuilder, class_name: str) -> SpecBuilder:
    """The CObList public interface shared by base and subclass specs."""
    return (
        builder
        .attribute("count", RangeDomain(0, 10_000))
        .constructor(class_name)
        .method("AddHead", [("value", ELEMENT)], category="update", return_type="int")
        .method("AddTail", [("value", ELEMENT)], category="update", return_type="int")
        .method("InsertBefore", [("position", POSITION), ("value", ELEMENT)],
                category="update", return_type="int")
        .method("InsertAfter", [("position", POSITION), ("value", ELEMENT)],
                category="update", return_type="int")
        .method("RemoveHead", category="process")
        .method("RemoveTail", category="process")
        .method("RemoveAt", [("position", POSITION)], category="process")
        .method("RemoveAll", category="process", return_type="int")
        .method("GetHead", category="access")
        .method("GetTail", category="access")
        .method("GetAt", [("position", POSITION)], category="access")
        .method("GetCount", category="access", return_type="int")
        .method("IsEmpty", category="access", return_type="bool")
        .method("Find", [("value", ELEMENT)], category="access", return_type="int")
        .method("SetAt", [("position", POSITION), ("value", ELEMENT)],
                category="update", return_type="bool")
        .destructor(f"~{class_name}")
    )


def _oblist_base_model(builder: SpecBuilder) -> SpecBuilder:
    """Nodes and edges shared by the base and subclass models (11 nodes)."""
    builder = (
        builder
        .node("birth", [builder.class_name], start=True)
        .node("addh", ["AddHead"])
        .node("addt", ["AddTail"])
        .node("ins", ["InsertBefore", "InsertAfter"])
        .node("remh", ["RemoveHead"])
        .node("remt", ["RemoveTail"])
        .node("rema", ["RemoveAt"])
        .node("remall", ["RemoveAll"])
        .node("acc", ["GetHead", "GetTail", "GetAt", "GetCount", "IsEmpty", "Find"])
        .node("set", ["SetAt"])
        .node("death", [f"~{builder.class_name}"])
    )
    for source, target in (
        ("birth", "addh"), ("birth", "addt"), ("birth", "acc"), ("birth", "death"),
        ("addh", "addt"),
        ("addh", "ins"), ("addt", "ins"),
        ("ins", "acc"), ("addh", "acc"), ("addt", "acc"),
        ("acc", "set"), ("set", "rema"),
        ("acc", "remh"), ("acc", "remt"), ("acc", "rema"), ("acc", "remall"),
        ("addh", "remh"), ("addt", "remt"), ("remh", "remall"),
        ("remh", "death"), ("remt", "death"), ("rema", "death"),
        ("remall", "death"), ("acc", "death"),
    ):
        builder.edge(source, target)
    return builder


def build_oblist_spec() -> ClassSpec:
    """T-spec of the base list: 11 nodes, 24 links."""
    builder = SpecBuilder("CObList", source_files=("repro/components/oblist.py",))
    builder = _oblist_interface(builder, "CObList")
    builder = _oblist_base_model(builder)
    return builder.build()


def build_sortable_oblist_spec() -> ClassSpec:
    """T-spec of the ordered list: 16 nodes, 43 links (paper's figures)."""
    builder = SpecBuilder(
        "CSortableObList",
        superclass="CObList",
        source_files=("repro/components/sortable_oblist.py",),
    )
    builder = _oblist_interface(builder, "CSortableObList")
    builder = (
        builder
        .method("Sort1", category="process", return_type="int")
        .method("Sort2", category="process", return_type="int")
        .method("ShellSort", category="process", return_type="int")
        .method("FindMax", category="access", return_type="int")
        .method("FindMin", category="access", return_type="int")
        .method("IsSorted", category="access", return_type="bool")
    )
    builder = _oblist_base_model(builder)
    builder = (
        builder
        .node("sort1", ["Sort1"])
        .node("sort2", ["Sort2"])
        .node("shell", ["ShellSort"])
        .node("findx", ["FindMax", "FindMin"])
        .node("issorted", ["IsSorted"])
    )
    for source, target in (
        ("addh", "sort1"), ("addt", "sort2"),
        ("ins", "shell"), ("ins", "sort1"), ("ins", "sort2"),
        ("sort2", "shell"),
        ("sort1", "findx"), ("sort2", "findx"), ("shell", "findx"),
        ("sort1", "issorted"), ("sort2", "issorted"), ("shell", "issorted"),
        ("findx", "remh"), ("issorted", "remt"),
        ("findx", "death"), ("issorted", "death"),
        ("findx", "rema"), ("issorted", "remall"),
        ("findx", "issorted"),
    ):
        builder.edge(source, target)
    return builder.build()


def build_product_spec() -> ClassSpec:
    """T-spec of Product (Figures 1–3): 6 nodes, 14 links."""
    provider_pointer = PointerDomain(ObjectDomain("Provider"))
    builder = (
        SpecBuilder("Product", source_files=("repro/components/product.py",))
        .attribute("qty", RangeDomain(1, 99999))
        .attribute("name", StringDomain(1, 30))
        .attribute("price", FloatRangeDomain(0.0, 100000.0))
        .attribute("prov", provider_pointer)
        .constructor("Product", ident="m1")
        .constructor(
            "Product",
            [
                ("q", RangeDomain(1, 99999)),
                ("n", StringDomain(1, 20)),
                ("p", FloatRangeDomain(0.01, 10000.0)),
                ("prv", provider_pointer),
            ],
            ident="m2",
        )
        .constructor("Product", [("n", StringDomain(1, 20))], ident="m3")
        .destructor("~Product", ident="m4")
        .method("UpdateName", [("n", StringDomain(1, 30))], category="update",
                ident="m5")
        .method("UpdateQty", [("q", RangeDomain(1, 99999))], category="update",
                ident="m6")
        .method("UpdatePrice", [("p", FloatRangeDomain(0.0, 10000.0))],
                category="update", ident="m7")
        .method("UpdateProv", [("prv", provider_pointer)], category="update",
                ident="m8")
        .method("ShowAttributes", category="access", return_type="str", ident="m9")
        .method("InsertProduct", category="process", return_type="int", ident="m10")
        .method("RemoveProduct", category="process", return_type="Product",
                ident="m11")
        .node("birth", ["Product"], start=True)
        .node("update", ["UpdateName", "UpdateQty", "UpdatePrice", "UpdateProv"])
        .node("show", ["ShowAttributes"])
        .node("insert", ["InsertProduct"])
        .node("remove", ["RemoveProduct"])
        .node("death", ["~Product"])
    )
    for source, target in (
        ("birth", "update"), ("birth", "insert"), ("birth", "show"),
        ("birth", "death"),
        ("update", "update"), ("update", "insert"), ("update", "show"),
        ("insert", "show"), ("insert", "remove"), ("insert", "update"),
        ("show", "remove"), ("show", "death"),
        ("remove", "death"), ("update", "death"),
    ):
        builder.edge(source, target)
    return builder.build()


def build_provider_spec() -> ClassSpec:
    """T-spec of Provider: minimal (birth → death)."""
    return (
        SpecBuilder("Provider", source_files=("repro/components/product.py",))
        .attribute("name", StringDomain(1, 20))
        .attribute("code", RangeDomain(0, 9999))
        .constructor(
            "Provider",
            [("name", StringDomain(1, 20)), ("code", RangeDomain(0, 9999))],
        )
        .destructor("~Provider")
        .node("birth", ["Provider"], start=True)
        .node("death", ["~Provider"])
        .edge("birth", "death")
        .build()
    )


def build_stack_spec() -> ClassSpec:
    """T-spec of BoundedStack: 6 nodes, 13 links."""
    value = RangeDomain(-99, 99)
    builder = (
        SpecBuilder("BoundedStack", source_files=("repro/components/stack.py",))
        .attribute("capacity", RangeDomain(1, 1024))
        .constructor("BoundedStack", [("capacity", RangeDomain(1, 16))])
        .destructor("~BoundedStack")
        .method("Push", [("value", value)], category="update", return_type="bool")
        .method("Pop", category="process")
        .method("Peek", category="access")
        .method("Size", category="access", return_type="int")
        .method("IsEmpty", category="access", return_type="bool")
        .method("IsFull", category="access", return_type="bool")
        .method("Clear", category="process", return_type="int")
        .node("birth", ["BoundedStack"], start=True)
        .node("push", ["Push"])
        .node("pop", ["Pop"])
        .node("query", ["Peek", "Size", "IsEmpty", "IsFull"])
        .node("clear", ["Clear"])
        .node("death", ["~BoundedStack"])
    )
    for source, target in (
        ("birth", "push"), ("birth", "query"), ("birth", "death"),
        ("push", "push"), ("push", "pop"), ("push", "query"), ("push", "clear"),
        ("pop", "query"), ("pop", "death"),
        ("query", "pop"), ("query", "clear"), ("query", "death"),
        ("clear", "death"),
    ):
        builder.edge(source, target)
    return builder.build()


def build_account_spec() -> ClassSpec:
    """T-spec of BankAccount: 5 nodes, 11 links."""
    builder = (
        SpecBuilder("BankAccount", source_files=("repro/components/account.py",))
        .attribute("balance", RangeDomain(0, 1_000_000))
        .attribute("owner", StringDomain(1, 64))
        .constructor(
            "BankAccount",
            [("owner", StringDomain(1, 10)), ("opening_balance", RangeDomain(0, 1000))],
        )
        .destructor("~BankAccount")
        .method("Deposit", [("amount", RangeDomain(1, 1000))], category="update",
                return_type="int")
        .method("Withdraw", [("amount", RangeDomain(1, 2000))], category="update",
                return_type="int")
        .method("GetBalance", category="access", return_type="int")
        .method("GetOwner", category="access", return_type="str")
        .method("History", category="access")
        .node("birth", ["BankAccount"], start=True)
        .node("dep", ["Deposit"])
        .node("wd", ["Withdraw"])
        .node("query", ["GetBalance", "GetOwner", "History"])
        .node("death", ["~BankAccount"])
    )
    for source, target in (
        ("birth", "dep"), ("birth", "query"), ("birth", "death"),
        ("dep", "dep"), ("dep", "wd"), ("dep", "query"), ("dep", "death"),
        ("wd", "query"), ("wd", "death"),
        ("query", "wd"), ("query", "death"),
    ):
        builder.edge(source, target)
    return builder.build()


# ---------------------------------------------------------------------------
# Attach the specs: importing repro.components yields self-testable classes.
# ---------------------------------------------------------------------------

OBLIST_SPEC = build_oblist_spec()
SORTABLE_OBLIST_SPEC = build_sortable_oblist_spec()
PRODUCT_SPEC = build_product_spec()
PROVIDER_SPEC = build_provider_spec()
STACK_SPEC = build_stack_spec()
ACCOUNT_SPEC = build_account_spec()

CObList.__tspec__ = OBLIST_SPEC
CSortableObList.__tspec__ = SORTABLE_OBLIST_SPEC
Product.__tspec__ = PRODUCT_SPEC
Provider.__tspec__ = PROVIDER_SPEC
BoundedStack.__tspec__ = STACK_SPEC
BankAccount.__tspec__ = ACCOUNT_SPEC


# ---------------------------------------------------------------------------
# Type models for the mutation experiments (the C++ compile-gate analogue):
# the "C++ types" of the list's members and helpers, as MFC declares them.
# ---------------------------------------------------------------------------

from ..mutation.typemodel import TypeModel  # noqa: E402  (import cycle-free)

OBLIST_TYPE_MODEL = TypeModel(
    attribute_types={
        "_head": "node",         # CNode* m_pNodeHead
        "_tail": "node",         # CNode* m_pNodeTail
        "_count": "int",         # int m_nCount
        "_free": "node",         # CNode* m_pNodeFree
        "_free_count": "int",
        "_blocks": "int",        # CPlex* m_pBlocks (block count here)
        "_block_size": "int",    # int m_nBlockSize
    },
    method_return_types={
        "_take_node": "node",    # CNode* NewNode(...)
        "_node_at": "node",      # CNode* FindIndex(...)
        "GetCount": "int",
        "Find": "int",
        "IsEmpty": "bool",
        "IsSorted": "bool",
        "class_invariant": "bool",
    },
    parameter_types={
        "value": "value",        # CObject* newElement
        "position": "int",       # POSITION (index model)
        "start": "int",
    },
)

