"""Subject components, all self-testable (t-spec embedded, BIT inherited).

Importing this package attaches each component's embedded t-spec as its
``__tspec__`` attribute (see :mod:`repro.components.specs`).
"""

from .account import BankAccount
from .oblist import CObList
from .product import DATABASE, Product, ProductDatabase, Provider, reset_database
from .sortable_oblist import CSortableObList
from .stack import BoundedStack
from . import specs  # noqa: F401  (side effect: attach __tspec__)
from .warehouse import WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES, build_warehouse_assembly
from .specs import (
    ACCOUNT_SPEC,
    OBLIST_SPEC,
    OBLIST_TYPE_MODEL,
    PRODUCT_SPEC,
    PROVIDER_SPEC,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)

__all__ = [
    "ACCOUNT_SPEC",
    "BankAccount",
    "BoundedStack",
    "CObList",
    "CSortableObList",
    "DATABASE",
    "OBLIST_SPEC",
    "OBLIST_TYPE_MODEL",
    "PRODUCT_SPEC",
    "PROVIDER_SPEC",
    "Product",
    "ProductDatabase",
    "Provider",
    "SORTABLE_OBLIST_SPEC",
    "STACK_SPEC",
    "WAREHOUSE_ASSEMBLY",
    "WAREHOUSE_ROLES",
    "build_warehouse_assembly",
    "reset_database",
]
