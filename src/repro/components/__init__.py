"""Subject components, all self-testable (t-spec embedded, BIT inherited).

Importing this package attaches each component's embedded t-spec as its
``__tspec__`` attribute (see :mod:`repro.components.specs`) and then
*discovers* the component classes (:mod:`repro.components.catalog`) —
``COMPONENTS`` and the component names in ``__all__`` are derived from the
scan, never hand-maintained, so the scenario registry's builtin entries
can be tested to cover exactly this set.
"""

from .product import DATABASE, ProductDatabase, reset_database
from . import specs  # noqa: F401  (side effect: attach __tspec__)
from .warehouse import WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES, build_warehouse_assembly
from .specs import (
    ACCOUNT_SPEC,
    OBLIST_SPEC,
    OBLIST_TYPE_MODEL,
    PRODUCT_SPEC,
    PROVIDER_SPEC,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)
from .catalog import (
    component_by_name,
    discover_components,
    setup_for,
    type_model_for,
)

#: name → class for every self-testable component in this package,
#: discovered by scanning the package modules (sorted by name).
COMPONENTS = discover_components()

# The discovered components become module attributes and exports — the
# classic `from repro.components import BoundedStack` keeps working, but
# the list can no longer drift from what the modules actually define.
globals().update(COMPONENTS)

_STATIC_EXPORTS = [
    "ACCOUNT_SPEC",
    "COMPONENTS",
    "DATABASE",
    "OBLIST_SPEC",
    "OBLIST_TYPE_MODEL",
    "PRODUCT_SPEC",
    "PROVIDER_SPEC",
    "ProductDatabase",
    "SORTABLE_OBLIST_SPEC",
    "STACK_SPEC",
    "WAREHOUSE_ASSEMBLY",
    "WAREHOUSE_ROLES",
    "build_warehouse_assembly",
    "component_by_name",
    "discover_components",
    "reset_database",
    "setup_for",
    "type_model_for",
]

__all__ = sorted(_STATIC_EXPORTS + list(COMPONENTS))
