"""``BoundedStack``: a small demo component for examples and tests.

Not from the paper — a minimal self-testable component exercising the whole
pipeline (t-spec, contracts, generation, execution) with a body small enough
to read in one sitting.  The quickstart example builds on it.
"""

from __future__ import annotations

from typing import Any, List

from ..bit.assertions import check_postcondition, check_precondition
from ..bit.builtintest import BuiltInTest

DEFAULT_CAPACITY = 16
MAX_CAPACITY = 1024


class BoundedStack(BuiltInTest):
    """LIFO stack with a fixed capacity."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        check_precondition(
            lambda: 1 <= int(capacity) <= MAX_CAPACITY,
            subject="BoundedStack.__init__",
            message=f"capacity must be in [1, {MAX_CAPACITY}]",
        )
        self._capacity = max(1, min(int(capacity), MAX_CAPACITY))
        self._items: List[Any] = []

    # -- built-in test -------------------------------------------------------

    def class_invariant(self) -> bool:
        return 0 <= len(self._items) <= self._capacity

    def bit_state(self) -> dict:
        return {"capacity": self._capacity, "items": list(self._items)}

    # -- operations -----------------------------------------------------------

    def Push(self, value: Any) -> bool:
        """Push; returns False (dropping the value) when the stack is full."""
        if len(self._items) >= self._capacity:
            return False
        before = len(self._items)
        self._items.append(value)
        check_postcondition(
            lambda: len(self._items) == before + 1, subject="BoundedStack.Push"
        )
        return True

    def Pop(self) -> Any:
        """Pop and return the top value; None when empty."""
        if not self._items:
            return None
        return self._items.pop()

    def Peek(self) -> Any:
        """The top value without removing it; None when empty."""
        if not self._items:
            return None
        return self._items[-1]

    def Size(self) -> int:
        return len(self._items)

    def IsEmpty(self) -> bool:
        return not self._items

    def IsFull(self) -> bool:
        return len(self._items) >= self._capacity

    def Clear(self) -> int:
        """Empty the stack; returns how many items were discarded."""
        discarded = len(self._items)
        self._items.clear()
        check_postcondition(self.IsEmpty, subject="BoundedStack.Clear")
        return discarded

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"BoundedStack(capacity={self._capacity}, items={self._items!r})"
