"""``BankAccount``: a contract-heavy demo component.

Not from the paper — included because design-by-contract examples in the
literature the paper builds on (Meyer's work, sec. 2.2) are classically
account-shaped.  The component shows declarative contracts (``require`` /
``ensure`` decorators) coexisting with in-body checks, and its invariant
(non-negative balance, consistent ledger) is deliberately easy to break with
seeded faults in tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ..bit.assertions import ensure, require
from ..bit.builtintest import BuiltInTest

MAX_AMOUNT = 1_000_000


class BankAccount(BuiltInTest):
    """Simple account: deposits, withdrawals, and a transaction ledger."""

    def __init__(self, owner: str = "anonymous", opening_balance: int = 0):
        self.owner = str(owner) or "anonymous"
        self.balance = max(0, int(opening_balance))
        self._ledger: List[Tuple[str, int]] = []
        if self.balance:
            self._ledger.append(("open", self.balance))

    # -- built-in test ---------------------------------------------------------

    def class_invariant(self) -> bool:
        """Balance non-negative and equal to the ledger sum."""
        if self.balance < 0:
            return False
        total = 0
        for kind, amount in self._ledger:
            if kind in ("open", "deposit"):
                total += amount
            elif kind == "withdraw":
                total -= amount
            else:
                return False
        return total == self.balance

    def bit_state(self) -> dict:
        return {
            "owner": self.owner,
            "balance": self.balance,
            "entries": len(self._ledger),
        }

    # -- operations ---------------------------------------------------------

    @require(lambda self, amount: 0 < amount <= MAX_AMOUNT,
             "deposit amount must be positive and bounded")
    @ensure(lambda self, result, amount: self.balance == result,
            "returned balance must match state")
    def Deposit(self, amount: int) -> int:
        """Add funds; returns the new balance."""
        self.balance += int(amount)
        self._ledger.append(("deposit", int(amount)))
        return self.balance

    def Withdraw(self, amount: int) -> int:
        """Remove funds if covered; returns the amount actually withdrawn.

        An uncovered or non-positive request withdraws nothing (returns 0) —
        graceful, so generated transactions stay green on the original.
        """
        value = int(amount)
        if value <= 0 or value > self.balance:
            return 0
        self.balance -= value
        self._ledger.append(("withdraw", value))
        return value

    def GetBalance(self) -> int:
        return self.balance

    def GetOwner(self) -> str:
        return self.owner

    def History(self) -> Tuple[Tuple[str, int], ...]:
        """The ledger as an immutable view."""
        return tuple(self._ledger)

    def __repr__(self) -> str:
        return f"BankAccount({self.owner!r}, balance={self.balance})"
