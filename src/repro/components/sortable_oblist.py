"""``CSortableObList``: the ordered-list subclass of the experiment.

The paper's first experiment mutates five methods of ``CSortableObList``, a
class "obtained through the Internet, which implements an ordered linked
list" on top of MFC's ``CObList`` (sec. 4, Table 2): ``Sort1``, ``Sort2``,
``ShellSort``, ``FindMax`` and ``FindMin``.

This re-implementation keeps the experimental essentials:

* it derives from :class:`~repro.components.oblist.CObList` (single
  inheritance, unchanged signatures — the Harrold-technique constraints of
  sec. 3.4.2);
* the five target methods are written against the *linked structure*
  (walking ``prev``/``next`` pointers, using the inherited ``_head`` /
  ``_tail`` / ``_count`` attributes), giving interface mutation its raw
  material: local variables interacting with inherited state;
* sorts end with a contract postcondition (order established, count
  preserved) — the partial-oracle role MFC assertions play in the paper.

``Sort1`` is deliberately the richest body (most locals and attribute uses)
— it is the method with by far the most mutants in Table 2 (280 of 700).
"""

from __future__ import annotations

from typing import Any, Optional

from ..bit.assertions import check_postcondition
from .oblist import CObList


class CSortableObList(CObList):
    """Linked list with explicit sorting and extremum search."""

    # ------------------------------------------------------------------
    # Sorting (Table 2 targets)
    # ------------------------------------------------------------------

    def Sort1(self) -> int:
        """Insertion sort by value shifting; returns the number of shifts.

        Walks markers left to right; for each marker value, shifts larger
        predecessors one node rightward and drops the value into its slot.
        """
        shifts = 0
        if self._head is None:
            return shifts
        marker = self._head.next
        while marker is not None:
            key = marker.value
            scan = marker.prev
            while scan is not None and scan.value > key:
                scan.next.value = scan.value
                scan = scan.prev
                shifts = shifts + 1
            if scan is None:
                self._head.value = key
            else:
                scan.next.value = key
            marker = marker.next
        check_postcondition(self.IsSorted, subject="CSortableObList.Sort1")
        return shifts

    def Sort2(self) -> int:
        """Selection sort by value swapping; returns the number of swaps."""
        swaps = 0
        outer = self._head
        while outer is not None:
            smallest = outer
            probe = outer.next
            while probe is not None:
                if probe.value < smallest.value:
                    smallest = probe
                probe = probe.next
            if smallest is not outer:
                held = outer.value
                outer.value = smallest.value
                smallest.value = held
                swaps = swaps + 1
            outer = outer.next
        check_postcondition(self.IsSorted, subject="CSortableObList.Sort2")
        return swaps

    def ShellSort(self) -> int:
        """Shell sort over a node index; returns the number of moves."""
        moves = 0
        size = self._count
        if size < 2:
            return moves
        nodes = []
        walker = self._head
        while walker is not None:
            nodes.append(walker)
            walker = walker.next
        gap = size // 2
        while gap > 0:
            index = gap
            while index < size:
                held = nodes[index].value
                slot = index
                while slot >= gap and nodes[slot - gap].value > held:
                    nodes[slot].value = nodes[slot - gap].value
                    slot = slot - gap
                    moves = moves + 1
                nodes[slot].value = held
                index = index + 1
            gap = gap // 2
        check_postcondition(self.IsSorted, subject="CSortableObList.ShellSort")
        return moves

    # ------------------------------------------------------------------
    # Extremum search (Table 2 targets)
    # ------------------------------------------------------------------

    def FindMax(self) -> int:
        """POSITION of the largest value; -1 when the list is empty."""
        best_position = -1
        best_value: Optional[Any] = None
        position = 0
        current = self._head
        while current is not None:
            if best_value is None or current.value > best_value:
                best_value = current.value
                best_position = position
            current = current.next
            position = position + 1
        return best_position

    def FindMin(self) -> int:
        """POSITION of the smallest value; -1 when the list is empty."""
        best_position = -1
        best_value: Optional[Any] = None
        position = 0
        current = self._head
        while current is not None:
            if best_value is None or current.value < best_value:
                best_value = current.value
                best_position = position
            current = current.next
            position = position + 1
        return best_position

    # ------------------------------------------------------------------
    # Order predicate (access method; also the sorts' postcondition)
    # ------------------------------------------------------------------

    def IsSorted(self) -> bool:
        """True when values are in non-decreasing head-to-tail order."""
        node = self._head
        while node is not None and node.next is not None:
            if node.value > node.next.value:
                return False
            node = node.next
        return True
