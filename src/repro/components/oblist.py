"""``CObList``: an MFC-style doubly linked list component.

The paper's empirical evaluation (sec. 4) uses the Microsoft Foundation
Class library's ``CObList`` — a doubly linked list of object pointers whose
methods carry validity assertions — as the base class of the experiment.
This is a faithful Python re-implementation of the public API subset the
experiment exercises, written in the MFC idiom (PascalCase methods,
POSITION-style indices) and instrumented with contract checks in the role of
MFC's ``ASSERT_VALID``.

Like MFC's implementation, the list **recycles nodes through a free pool**
(MFC: ``m_pNodeFree`` / ``m_pBlocks`` / ``m_nBlockSize``): removal methods
push the unlinked node onto a free list, and insertion methods pop from it,
allocating a block of spare nodes when it runs dry.  The pool matters for
the mutation experiment: it gives every method a distinct footprint over the
class's attributes, so the G(R2)/E(R2) sets of interface mutation are
non-trivial — and pool-bookkeeping faults are exactly the subtle
interaction faults that weak suites miss.  Also like MFC, the validity
assertions check the *element chain only*, not the pool.

Deviations from MFC, chosen so generated transaction suites run green on the
original class (documented in DESIGN.md §2):

* removal/access on an empty list **returns None** instead of asserting —
  the TFM cannot count elements, so transactions may legally reach a remove
  node with an empty list;
* POSITIONs are plain 0-based integer indices.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..bit.assertions import check_invariant, check_postcondition
from ..bit.builtintest import BuiltInTest

#: MFC default allocation granularity for list node blocks.
BLOCK_SIZE = 10


class _ListNode:
    """One doubly linked node; an implementation detail of :class:`CObList`."""

    __slots__ = ("value", "prev", "next")

    def __init__(self, value: Any):
        self.value = value
        self.prev: Optional["_ListNode"] = None
        self.next: Optional["_ListNode"] = None

    def __repr__(self) -> str:
        return f"_ListNode({self.value!r})"


class CObList(BuiltInTest):
    """Doubly linked list with MFC ``CObList``-style interface."""

    def __init__(self, block_size: int = BLOCK_SIZE):
        self._head: Optional[_ListNode] = None
        self._tail: Optional[_ListNode] = None
        self._count: int = 0
        # Node recycling pool (MFC: m_pNodeFree / m_pBlocks / m_nBlockSize).
        self._free: Optional[_ListNode] = None
        self._free_count: int = 0
        self._blocks: int = 0
        self._block_size: int = max(1, int(block_size))

    # ------------------------------------------------------------------
    # Built-in test interface (redefined, per Figure 4)
    # ------------------------------------------------------------------

    def class_invariant(self) -> bool:
        """MFC-fidelity validity check (``CObList::AssertValid`` shape).

        MFC only asserts that an empty list has null head/tail pointers and
        a non-empty one has non-null ones; it does **not** walk the chain or
        re-count elements, and it ignores the free pool.  Keeping the check
        this weak matters for the experiment: the paper's assertion oracle
        is deliberately *partial* (sec. 3.3), and a chain-walking invariant
        would catch structural faults MFC's assertions let through.
        :meth:`deep_check` provides the strong check for unit tests.
        """
        if self._count < 0:
            return False
        if self._count == 0:
            return self._head is None and self._tail is None
        return self._head is not None and self._tail is not None

    def deep_check(self) -> bool:  # concat-lint: disable=CL001 -- test-suite diagnostic aid, deliberately outside the t-spec interface
        """Full structural validation (chain walk + count); test-suite aid,
        not part of the embedded assertion oracle."""
        if self._count < 0:
            return False
        if self._head is None or self._tail is None:
            return self._head is None and self._tail is None and self._count == 0
        if self._head.prev is not None or self._tail.next is not None:
            return False
        seen = 0
        node = self._head
        previous = None
        while node is not None and seen <= self._count:
            if node.prev is not previous:
                return False
            previous = node
            node = node.next
            seen += 1
        return node is None and previous is self._tail and seen == self._count

    # ------------------------------------------------------------------
    # Node pool (MFC block allocator shape)
    # ------------------------------------------------------------------

    def _take_node(self, value: Any) -> _ListNode:
        """Pop a recycled node, allocating a block when the pool is dry."""
        node = self._free
        if node is None:
            spare = self._block_size
            while spare > 1:
                extra = _ListNode(None)
                extra.next = self._free
                self._free = extra
                self._free_count = self._free_count + 1
                spare = spare - 1
            self._blocks = self._blocks + 1
            fresh = _ListNode(value)
            return fresh
        self._free = node.next
        self._free_count = self._free_count - 1
        node.value = value
        node.prev = None
        node.next = None
        return node

    def _recycle_node(self, node: _ListNode) -> None:
        """Push an unlinked node onto the free pool."""
        node.value = None
        node.prev = None
        node.next = self._free
        self._free = node
        self._free_count = self._free_count + 1

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def AddHead(self, value: Any) -> int:
        """Prepend; returns the POSITION (always 0) of the new element."""
        node = self._take_node(value)
        old_head = self._head
        node.next = old_head
        if old_head is not None:
            old_head.prev = node
        else:
            self._tail = node
        self._head = node
        new_count = self._count + 1
        self._count = new_count
        check_invariant(self.class_invariant, subject="CObList.AddHead")
        inserted_at = 0
        return inserted_at

    def AddTail(self, value: Any) -> int:
        """Append; returns the POSITION of the new element."""
        node = self._take_node(value)
        old_tail = self._tail
        node.prev = old_tail
        if old_tail is not None:
            old_tail.next = node
        else:
            self._head = node
        self._tail = node
        self._count = self._count + 1
        check_invariant(self.class_invariant, subject="CObList.AddTail")
        return self._count - 1

    def InsertBefore(self, position: int, value: Any) -> int:
        """Insert before the element at ``position``; returns new POSITION.

        Out-of-range positions clamp to the nearest end (graceful deviation).
        """
        if position <= 0 or self._head is None:
            return self.AddHead(value)
        if position >= self._count:
            return self.AddTail(value)
        anchor = self._node_at(position)
        node = self._take_node(value)
        node.prev = anchor.prev
        node.next = anchor
        anchor.prev.next = node
        anchor.prev = node
        self._count = self._count + 1
        check_invariant(self.class_invariant, subject="CObList.InsertBefore")
        return position

    def InsertAfter(self, position: int, value: Any) -> int:
        """Insert after the element at ``position``; returns new POSITION."""
        if self._head is None or position >= self._count - 1:
            return self.AddTail(value)
        if position < 0:
            return self.AddHead(value)
        anchor = self._node_at(position)
        node = self._take_node(value)
        node.prev = anchor
        node.next = anchor.next
        anchor.next.prev = node
        anchor.next = node
        self._count = self._count + 1
        check_invariant(self.class_invariant, subject="CObList.InsertAfter")
        return position + 1

    # ------------------------------------------------------------------
    # Removal (Table 3 targets: AddHead, RemoveAt, RemoveHead)
    # ------------------------------------------------------------------

    def RemoveHead(self) -> Any:
        """Remove and return the head value; None when the list is empty."""
        node = self._head
        if node is None:
            return None
        taken = node.value
        following = node.next
        self._head = following
        if following is not None:
            following.prev = None
        else:
            self._tail = None
        remaining = self._count - 1
        self._count = remaining
        self._recycle_node(node)
        check_invariant(self.class_invariant, subject="CObList.RemoveHead")
        return taken

    def RemoveTail(self) -> Any:
        """Remove and return the tail value; None when the list is empty."""
        node = self._tail
        if node is None:
            return None
        taken = node.value
        preceding = node.prev
        self._tail = preceding
        if preceding is not None:
            preceding.next = None
        else:
            self._head = None
        self._count = self._count - 1
        self._recycle_node(node)
        check_invariant(self.class_invariant, subject="CObList.RemoveTail")
        return taken

    def RemoveAt(self, position: int) -> Any:
        """Remove and return the value at POSITION; None when out of range."""
        if position < 0 or position >= self._count:
            return None
        node = self._node_at(position)
        taken = node.value
        before = node.prev
        after = node.next
        if before is not None:
            before.next = after
        else:
            self._head = after
        if after is not None:
            after.prev = before
        else:
            self._tail = before
        self._count = self._count - 1
        self._recycle_node(node)
        check_invariant(self.class_invariant, subject="CObList.RemoveAt")
        return taken

    def RemoveAll(self) -> int:
        """Empty the list; returns how many elements were removed."""
        removed = self._count
        node = self._head
        while node is not None:
            following = node.next
            self._recycle_node(node)
            node = following
        self._head = None
        self._tail = None
        self._count = 0
        check_postcondition(lambda: self.IsEmpty(), subject="CObList.RemoveAll")
        return removed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def GetHead(self) -> Any:
        """The head value, or None when empty."""
        if self._head is None:
            return None
        return self._head.value

    def GetTail(self) -> Any:
        """The tail value, or None when empty."""
        if self._tail is None:
            return None
        return self._tail.value

    def GetAt(self, position: int) -> Any:
        """The value at POSITION, or None when out of range."""
        if position < 0 or position >= self._count:
            return None
        return self._node_at(position).value

    def SetAt(self, position: int, value: Any) -> bool:
        """Replace the value at POSITION; False when out of range."""
        if position < 0 or position >= self._count:
            return False
        self._node_at(position).value = value
        return True

    def GetCount(self) -> int:
        """Number of elements."""
        return self._count

    def IsEmpty(self) -> bool:
        """True when the list holds no elements."""
        return self._count == 0

    def Find(self, value: Any, start: int = 0) -> int:
        """POSITION of the first occurrence at/after ``start``; -1 if absent."""
        if start < 0:
            start = 0
        position = 0
        node = self._head
        while node is not None:
            if position >= start and node.value == value:
                return position
            node = node.next
            position = position + 1
        return -1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node_at(self, position: int) -> _ListNode:
        """The node at a validated POSITION (walks from the nearer end)."""
        if position <= self._count // 2:
            node = self._head
            index = 0
            while index < position:
                node = node.next
                index += 1
            return node
        node = self._tail
        index = self._count - 1
        while index > position:
            node = node.prev
            index -= 1
        return node

    def bit_state(self) -> dict:
        """Observable state for the Reporter: contents head-to-tail + count.

        The node pool is deliberately absent — MFC's diagnostics ignore it
        too, and it is not part of the component's observable behaviour.
        """
        return {"count": self._count, "values": list(self._values())}

    #: Hard cap on observation traversals: a fault-corrupted list may be
    #: cyclic, and the reporter must terminate even then.
    _TRAVERSAL_CAP = 10_000

    def _values(self) -> List[Any]:
        """Values head-to-tail (reporting helper; bounded against cycles)."""
        values: List[Any] = []
        node = self._head
        while node is not None and len(values) < self._TRAVERSAL_CAP:
            values.append(node.value)
            node = node.next
        if node is not None:
            values.append("<traversal cap reached>")
        return values

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._values()!r})"
