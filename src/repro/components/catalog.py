"""Discovery of the package's self-testable components.

The scenario registry (:mod:`repro.scenarios.registry`) needs to
*enumerate* components, not just import a hand-maintained list — a static
export list drifts the moment a module adds a component.  Discovery scans
every module of :mod:`repro.components` for classes that satisfy the
package's self-testability contract: a :class:`~repro.bit.builtintest
.BuiltInTest` subclass defined in that module with an attached
``__tspec__``.  The package ``__all__`` is derived from the same scan, so
exports and registry coverage cannot disagree.

Per-component execution context (the type model the C++-typing gate needs,
the ambient-state setup a component requires) also lives here, keyed by
discovered name.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Callable, Dict, Optional

from ..bit.builtintest import BuiltInTest


def discover_components() -> Dict[str, type]:
    """name → class for every self-testable component in the package.

    Deterministic: modules are scanned in sorted order and the result is
    name-sorted.  A class counts when it (a) subclasses ``BuiltInTest``,
    (b) is defined in the scanned module (not merely imported into it),
    and (c) carries an embedded t-spec.
    """
    package = importlib.import_module("repro.components")
    found: Dict[str, type] = {}
    for info in sorted(pkgutil.iter_modules(package.__path__),
                       key=lambda entry: entry.name):
        module = importlib.import_module(f"repro.components.{info.name}")
        for value in vars(module).values():
            if (isinstance(value, type)
                    and issubclass(value, BuiltInTest)
                    and value is not BuiltInTest
                    and value.__module__ == module.__name__
                    and hasattr(value, "__tspec__")):
                found[value.__name__] = value
    return dict(sorted(found.items()))


def component_by_name(name: str) -> type:
    """The discovered component class for ``name`` (KeyError when absent)."""
    return discover_components()[name]


def type_model_for(name: str):
    """The C++-typing model generation/triage should gate with, or None."""
    if name in ("CObList", "CSortableObList"):
        from .specs import OBLIST_TYPE_MODEL

        return OBLIST_TYPE_MODEL
    return None


def setup_for(name: str) -> Optional[Callable[[], None]]:
    """The ambient-state reset a component's runs need, or None.

    ``Product`` (and anything sharing its database) reads and writes the
    module-global :data:`~repro.components.product.DATABASE`; every suite
    execution must start from an empty one or runs would couple.
    """
    if name in ("Product", "Provider"):
        from .product import reset_database

        return reset_database
    return None
