"""The ``Product`` example component (Figure 1 of the paper).

``Product`` models a product in the stock-control system of a warehouse; it
carries a quantity, a name, a price and a pointer to its ``Provider``, and
can insert/remove itself into/from the stock database.  The paper's Figure 2
gives its transaction flow model, with the use-case path *create → obtain
data → remove from database → destroy* highlighted.

The stock database the paper only alludes to is built here as a small
in-memory substrate (:class:`ProductDatabase`) keyed by product name —
enough to exercise the insert/remove transactions end to end.

C++ constructor overloads (``Product()``, ``Product(q, n, p, prv)``,
``Product(n)``) become arity dispatch in ``__init__``; the t-spec keeps
three distinct constructor method records whose alternative grouping in the
birth node reproduces the overload structure (Figure 3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..bit.builtintest import BuiltInTest

#: Attribute bounds from the paper's t-spec (Figure 3): qty ∈ [1, 99999].
QTY_MIN = 1
QTY_MAX = 99999
PRICE_MIN = 0.0
PRICE_MAX = 100000.0
NAME_MAX_LENGTH = 30


class Provider(BuiltInTest):  # concat-lint: disable=CL011 -- two-method lifecycle class; its methods define no locals for the IND operators to perturb
    """A goods provider; referenced by :class:`Product` (Figure 1)."""

    def __init__(self, name: str = "default provider", code: int = 1):
        self.name = str(name)
        self.code = int(code)

    def class_invariant(self) -> bool:
        return bool(self.name) and self.code >= 0

    def __repr__(self) -> str:
        return f"Provider({self.name!r}, {self.code})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Provider)
            and self.name == other.name
            and self.code == other.code
        )

    def __hash__(self) -> int:
        return hash((self.name, self.code))


class ProductDatabase:
    """In-memory stock database substrate (keyed by product name)."""

    def __init__(self):
        self._rows: Dict[str, Dict[str, Any]] = {}

    def insert(self, product: "Product") -> bool:
        """Store a row for the product; False when the name already exists."""
        if product.name in self._rows:
            return False
        self._rows[product.name] = product.row()
        return True

    def remove(self, name: str) -> Optional[Dict[str, Any]]:
        """Delete and return the row for ``name``; None when absent."""
        return self._rows.pop(name, None)

    def lookup(self, name: str) -> Optional[Dict[str, Any]]:
        row = self._rows.get(name)
        return dict(row) if row is not None else None

    def count(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()


#: The ambient warehouse database generated drivers run against.  Tests and
#: examples call :func:`reset_database` between sessions.
DATABASE = ProductDatabase()


def reset_database() -> None:
    """Empty the ambient stock database."""
    DATABASE.clear()


class Product(BuiltInTest):
    """A warehouse product (Figure 1), self-testable."""

    def __init__(self, *args):
        """Constructor overloads by arity (C++ heritage).

        * ``Product()`` — default product;
        * ``Product(name)`` — named product with default stock;
        * ``Product(qty, name, price, provider)`` — fully specified.
        """
        if len(args) == 0:
            qty, name, price, provider = QTY_MIN, "unnamed", PRICE_MIN, None
        elif len(args) == 1:
            qty, name, price, provider = QTY_MIN, args[0], PRICE_MIN, None
        elif len(args) == 4:
            qty, name, price, provider = args
        else:
            raise TypeError(
                f"Product() takes 0, 1 or 4 arguments ({len(args)} given)"
            )
        self.qty = int(qty)
        self.name = str(name)
        self.price = float(price)
        self.prov: Optional[Provider] = provider
        self._inserted = False

    # ------------------------------------------------------------------
    # Built-in test interface
    # ------------------------------------------------------------------

    def class_invariant(self) -> bool:
        """Attribute domains of Figure 3 hold, and provider is valid."""
        if not (QTY_MIN <= self.qty <= QTY_MAX):
            return False
        if not (PRICE_MIN <= self.price <= PRICE_MAX):
            return False
        if not (0 < len(self.name) <= NAME_MAX_LENGTH):
            return False
        if self.prov is not None and not isinstance(self.prov, Provider):
            return False
        return True

    def bit_state(self) -> dict:
        return {
            "qty": self.qty,
            "name": self.name,
            "price": self.price,
            "prov": repr(self.prov),
            "inserted": self._inserted,
        }

    # ------------------------------------------------------------------
    # Update methods (Figure 1)
    # ------------------------------------------------------------------

    def UpdateName(self, n: str) -> None:
        """Rename the product (truncated to the specified maximum length)."""
        text = str(n)
        if not text:
            text = "unnamed"
        self.name = text[:NAME_MAX_LENGTH]

    def UpdateQty(self, q: int) -> None:
        """Set the stocked quantity (clamped into the valid domain)."""
        value = int(q)
        if value < QTY_MIN:
            value = QTY_MIN
        if value > QTY_MAX:
            value = QTY_MAX
        self.qty = value

    def UpdatePrice(self, p: float) -> None:
        """Set the unit price (clamped into the valid domain)."""
        value = float(p)
        if value < PRICE_MIN:
            value = PRICE_MIN
        if value > PRICE_MAX:
            value = PRICE_MAX
        self.price = value

    def UpdateProv(self, prv: Optional[Provider]) -> None:
        """Set (or clear) the provider pointer."""
        if prv is not None and not isinstance(prv, Provider):
            raise TypeError(f"provider must be a Provider, got {type(prv).__name__}")
        self.prov = prv

    # ------------------------------------------------------------------
    # Access method (Figure 1)
    # ------------------------------------------------------------------

    def ShowAttributes(self) -> str:
        """Formatted attribute dump (the paper prints; we return the text)."""
        provider_text = self.prov.name if self.prov is not None else "<none>"
        return (
            f"Product[name={self.name}, qty={self.qty}, "
            f"price={self.price:.2f}, provider={provider_text}]"
        )

    # ------------------------------------------------------------------
    # Insert/Delete from database (Figure 1)
    # ------------------------------------------------------------------

    def InsertProduct(self) -> int:
        """Insert into the stock database; 1 on success, 0 when duplicate."""
        if DATABASE.insert(self):
            self._inserted = True
            return 1
        return 0

    def RemoveProduct(self) -> Optional["Product"]:
        """Remove from the stock database; returns self, or None when absent."""
        row = DATABASE.remove(self.name)
        if row is None:
            return None
        self._inserted = False
        return self

    # ------------------------------------------------------------------

    def row(self) -> Dict[str, Any]:  # concat-lint: disable=CL001 -- database-substrate helper consumed by ProductDatabase, not a tested transaction method
        """The database row for this product."""
        return {
            "name": self.name,
            "qty": self.qty,
            "price": self.price,
            "provider": self.prov.name if self.prov is not None else None,
        }

    def __repr__(self) -> str:
        return f"Product({self.qty}, {self.name!r}, {self.price}, {self.prov!r})"
