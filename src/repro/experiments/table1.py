"""Table 1 — the interface mutation operator battery.

Table 1 of the paper lists the five essential interface mutation operators
and their definitions.  The regenerable artefact here is the demonstration
that each operator, applied to the experiment's subject methods, produces
the documented class of mutants: for every operator we report its
definition, how many mutation points it derives (before and after the
C++-typing gate), and one concrete example mutant.

``--with-analysis`` additionally *executes* the typed ``CSortableObList``
pool under the experiment suite and appends per-operator kill counts — the
workload the incremental outcome cache (:mod:`repro.mutation.cache`)
accelerates: a warm rerun with ``--cache-dir`` replays every verdict and
executes zero mutant test cases while printing identical rows.
"""

from __future__ import annotations

import argparse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.cache import MutationOutcomeCache
from ..mutation.generate import MutantGenerator, generate_mutants
from ..mutation.operators import ALL_OPERATORS
from ..mutation.parallel import ParallelMutationAnalysis
from ..obs import Telemetry
from .config import (
    EXPERIMENT_SEED,
    TABLE2_METHODS,
    TABLE3_METHODS,
    sortable_oracle,
    sortable_suite,
)

#: Operator definitions, verbatim from Table 1.
OPERATOR_DEFINITIONS: Dict[str, str] = {
    "IndVarBitNeg": "Inserts bitwise negation at non-interface variable use",
    "IndVarRepGlob": "Replaces non-interface variable by G(R2)",
    "IndVarRepLoc": "Replaces non-interface variable by L(R2)",
    "IndVarRepExt": "Replaces non-interface variable by E(R2)",
    "IndVarRepReq": "Replaces non-interface variable by RC",
}


@dataclass(frozen=True)
class OperatorDemo:
    """One operator's row in the regenerated Table 1."""

    operator: str
    definition: str
    untyped_mutants: int      # without the compile gate
    typed_mutants: int        # surviving the C++-typing gate
    example: str              # one concrete mutant description

    def format(self) -> str:
        return (
            f"{self.operator:<15} {self.definition}\n"
            f"{'':15} {self.typed_mutants} mutants "
            f"({self.untyped_mutants} before typing gate); "
            f"e.g. {self.example}"
        )


@dataclass(frozen=True)
class Table1Result:
    demos: Tuple[OperatorDemo, ...]
    #: The executed battery (``--with-analysis`` only): the typed
    #: ``CSortableObList`` pool under the experiment suite.
    run: Optional[MutationRun] = None

    def format(self) -> str:
        header = "Table 1. Interface mutation operators applied"
        lines = [header] + [demo.format() for demo in self.demos]
        if self.run is not None:
            lines.append(
                f"Kill counts over {self.run.total} analyzed "
                f"CSortableObList mutants ({self.run.suite_size}-case suite):"
            )
            for demo in self.demos:
                outcomes = self.run.outcomes_for_operator(demo.operator)
                killed = sum(1 for outcome in outcomes if outcome.killed)
                lines.append(
                    f"  {demo.operator:<15} {killed}/{len(outcomes)} killed"
                )
            total = self.run.total
            killed = len(self.run.killed)
            equivalent = len(self.run.statically_equivalent)
            raw = killed / total if total else 1.0
            pool = total - equivalent
            adjusted = killed / pool if pool else 1.0
            lines.append(
                f"  score: {raw:.1%} raw, {adjusted:.1%} adjusted "
                f"({equivalent} statically-equivalent mutants excluded; "
                f"{self.run.dispatched_count} of {total} dispatched)"
            )
            if self.run.triage is not None:
                lines.append(f"  {self.run.triage.summary()}")
        return "\n".join(lines)

    def demo_for(self, operator: str) -> OperatorDemo:
        for demo in self.demos:
            if demo.operator == operator:
                return demo
        raise KeyError(operator)


def _operator_demo(operator_name: str) -> OperatorDemo:
    """One operator's row — a pure function of the operator name, so the
    per-operator fan-out can run in worker processes and still merge
    deterministically (generation has no RNG or shared state)."""
    targets = (
        (CSortableObList, TABLE2_METHODS),
        (CObList, TABLE3_METHODS),
    )
    operator = next(op for op in ALL_OPERATORS if op.name == operator_name)
    untyped_total = 0
    typed_total = 0
    example: Optional[str] = None
    for target, methods in targets:
        untyped_mutants, _ = MutantGenerator(
            target, operators=(operator,)
        ).generate(methods)
        typed_mutants, _ = MutantGenerator(
            target, operators=(operator,), type_model=OBLIST_TYPE_MODEL
        ).generate(methods)
        untyped_total += len(untyped_mutants)
        typed_total += len(typed_mutants)
        if example is None and typed_mutants:
            first = typed_mutants[0].record
            example = f"{first.class_name}.{first.method_name}: {first.description}"
    return OperatorDemo(
        operator=operator.name,
        definition=OPERATOR_DEFINITIONS[operator.name],
        untyped_mutants=untyped_total,
        typed_mutants=typed_total,
        example=example or "<no mutants>",
    )


def run_table1(workers: int = 1,
               with_analysis: bool = False,
               seed: int = EXPERIMENT_SEED,
               max_cases: Optional[int] = None,
               cache: Optional[MutationOutcomeCache] = None,
               prune: bool = True,
               static_triage: bool = True,
               batch_size: Optional[int] = None,
               telemetry: Optional[Telemetry] = None) -> Table1Result:
    """Regenerate Table 1 over the experiments' subject methods.

    ``workers > 1`` fans the five operator columns out to a process pool;
    rows come back in operator order, so the result is identical to the
    serial run.  ``with_analysis`` additionally executes the typed
    ``CSortableObList`` pool under the experiment suite (on the parallel
    engine when ``workers > 1``) and reports per-operator kill counts;
    ``cache`` replays unchanged verdicts from the outcome cache,
    ``prune=False`` disables coverage-guided mutant×case pruning (verdicts
    are identical either way), ``static_triage=False`` disables the static
    equivalent-mutant triage pass (triaged mutants are never dispatched;
    every *executed* mutant's verdict is identical either way),
    ``batch_size`` sets the parallel engine's dispatch chunk (default
    adaptive; verdicts identical at every size), and
    ``max_cases`` truncates the suite (smoke/CI hook).  ``telemetry`` attaches a run-telemetry session to
    generation and analysis (the per-operator demo fan-out runs in
    worker processes and stays un-instrumented); rows are identical
    with or without it.
    """
    names = [operator.name for operator in ALL_OPERATORS]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            demos = tuple(pool.map(_operator_demo, names))
    else:
        demos = tuple(_operator_demo(name) for name in names)
    run = None
    if with_analysis:
        suite = sortable_suite(seed)
        if max_cases is not None:
            suite = replace(suite, cases=suite.cases[:max_cases])
        mutants, _ = generate_mutants(
            CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL,
            telemetry=telemetry,
        )
        engine = ParallelMutationAnalysis if workers > 1 else MutationAnalysis
        run = engine(
            CSortableObList,
            suite,
            oracle=sortable_oracle(),
            cache=cache,
            prune=prune,
            static_triage=static_triage,
            triage_type_model=OBLIST_TYPE_MODEL,
            telemetry=telemetry,
            **({"workers": workers, "batch_size": batch_size}
               if workers > 1 else {}),
        ).analyze(mutants)
    return Table1Result(demos=demos, run=run)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.table1 [--workers N] …``."""
    from .cli import (
        add_cache_arguments,
        add_obs_arguments,
        add_prune_arguments,
        add_server_argument,
        add_throughput_arguments,
        add_triage_arguments,
        add_workers_argument,
        batch_size_from_arguments,
        cache_from_arguments,
        compact_cache,
        finish_telemetry,
        print_cache_stats,
        prune_from_arguments,
        run_experiment_via_server,
        static_triage_from_arguments,
        telemetry_from_arguments,
    )

    parser = argparse.ArgumentParser(
        description="Regenerate Table 1 (interface mutation operators)."
    )
    add_workers_argument(parser)
    add_server_argument(parser)
    parser.add_argument(
        "--with-analysis", action="store_true",
        help="also execute the typed CSortableObList pool and report "
             "per-operator kill counts",
    )
    parser.add_argument("--seed", type=int, default=EXPERIMENT_SEED,
                        help="suite-generation seed (with --with-analysis)")
    parser.add_argument("--max-cases", type=int, default=None,
                        help="truncate the suite (smoke runs only)")
    add_cache_arguments(parser)
    add_throughput_arguments(parser)
    add_prune_arguments(parser)
    add_triage_arguments(parser)
    add_obs_arguments(parser)
    arguments = parser.parse_args(argv)
    if arguments.server:
        return run_experiment_via_server(arguments.server, "table1",
                                         argv)
    telemetry = telemetry_from_arguments(arguments)
    cache = cache_from_arguments(arguments, telemetry=telemetry)
    result = run_table1(
        workers=arguments.workers,
        with_analysis=arguments.with_analysis,
        seed=arguments.seed,
        max_cases=arguments.max_cases,
        cache=cache,
        prune=prune_from_arguments(arguments),
        static_triage=static_triage_from_arguments(arguments),
        batch_size=batch_size_from_arguments(arguments),
        telemetry=telemetry,
    )
    print(result.format())
    if arguments.cache_stats:
        print_cache_stats(result.run)
    compact_cache(cache, arguments)
    finish_telemetry(telemetry, arguments)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
