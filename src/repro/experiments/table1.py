"""Table 1 — the interface mutation operator battery.

Table 1 of the paper lists the five essential interface mutation operators
and their definitions.  The regenerable artefact here is the demonstration
that each operator, applied to the experiment's subject methods, produces
the documented class of mutants: for every operator we report its
definition, how many mutation points it derives (before and after the
C++-typing gate), and one concrete example mutant.
"""

from __future__ import annotations

import argparse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from ..mutation.generate import MutantGenerator
from ..mutation.operators import ALL_OPERATORS
from .config import TABLE2_METHODS, TABLE3_METHODS

#: Operator definitions, verbatim from Table 1.
OPERATOR_DEFINITIONS: Dict[str, str] = {
    "IndVarBitNeg": "Inserts bitwise negation at non-interface variable use",
    "IndVarRepGlob": "Replaces non-interface variable by G(R2)",
    "IndVarRepLoc": "Replaces non-interface variable by L(R2)",
    "IndVarRepExt": "Replaces non-interface variable by E(R2)",
    "IndVarRepReq": "Replaces non-interface variable by RC",
}


@dataclass(frozen=True)
class OperatorDemo:
    """One operator's row in the regenerated Table 1."""

    operator: str
    definition: str
    untyped_mutants: int      # without the compile gate
    typed_mutants: int        # surviving the C++-typing gate
    example: str              # one concrete mutant description

    def format(self) -> str:
        return (
            f"{self.operator:<15} {self.definition}\n"
            f"{'':15} {self.typed_mutants} mutants "
            f"({self.untyped_mutants} before typing gate); "
            f"e.g. {self.example}"
        )


@dataclass(frozen=True)
class Table1Result:
    demos: Tuple[OperatorDemo, ...]

    def format(self) -> str:
        header = "Table 1. Interface mutation operators applied"
        return "\n".join([header] + [demo.format() for demo in self.demos])

    def demo_for(self, operator: str) -> OperatorDemo:
        for demo in self.demos:
            if demo.operator == operator:
                return demo
        raise KeyError(operator)


def _operator_demo(operator_name: str) -> OperatorDemo:
    """One operator's row — a pure function of the operator name, so the
    per-operator fan-out can run in worker processes and still merge
    deterministically (generation has no RNG or shared state)."""
    targets = (
        (CSortableObList, TABLE2_METHODS),
        (CObList, TABLE3_METHODS),
    )
    operator = next(op for op in ALL_OPERATORS if op.name == operator_name)
    untyped_total = 0
    typed_total = 0
    example: Optional[str] = None
    for target, methods in targets:
        untyped_mutants, _ = MutantGenerator(
            target, operators=(operator,)
        ).generate(methods)
        typed_mutants, _ = MutantGenerator(
            target, operators=(operator,), type_model=OBLIST_TYPE_MODEL
        ).generate(methods)
        untyped_total += len(untyped_mutants)
        typed_total += len(typed_mutants)
        if example is None and typed_mutants:
            first = typed_mutants[0].record
            example = f"{first.class_name}.{first.method_name}: {first.description}"
    return OperatorDemo(
        operator=operator.name,
        definition=OPERATOR_DEFINITIONS[operator.name],
        untyped_mutants=untyped_total,
        typed_mutants=typed_total,
        example=example or "<no mutants>",
    )


def run_table1(workers: int = 1) -> Table1Result:
    """Regenerate Table 1 over the experiments' subject methods.

    ``workers > 1`` fans the five operator columns out to a process pool;
    rows come back in operator order, so the result is identical to the
    serial run.
    """
    names = [operator.name for operator in ALL_OPERATORS]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            demos = tuple(pool.map(_operator_demo, names))
    else:
        demos = tuple(_operator_demo(name) for name in names)
    return Table1Result(demos=demos)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.table1 [--workers N]``."""
    parser = argparse.ArgumentParser(
        description="Regenerate Table 1 (interface mutation operators)."
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for the per-operator fan-out (default: 1)",
    )
    arguments = parser.parse_args(argv)
    print(run_table1(workers=arguments.workers).format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
