"""Experiment 2 — Table 3: base-class faults under the incremental suite.

Reproduces sec. 4's second experiment: interface-mutate three methods of
the **base** class ``CObList``, re-derive ``CSortableObList`` over each
mutated base, and run only the subclass's *incremental* test set (the
test cases for transactions containing new methods; inherited-only
transactions are not rerun, per sec. 3.4.2).

The paper's headline: scores drop from 95.7% (Table 2) to **63.5%**,
showing that "not retesting a transaction in the context of the subclass,
although cost effective […], can be dangerous".  For contrast, this module
can also run the base class's own full suite and the subclass's full
(non-incremental) suite over the same mutants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from ..history.incremental import IncrementalPlan
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.generate import GenerationReport, generate_mutants
from ..mutation.score import ScoreTable, build_score_table
from .config import (
    EXPERIMENT_SEED,
    TABLE3_METHODS,
    incremental_plan,
    oblist_oracle,
    oblist_suite,
    sortable_oracle,
    sortable_suite,
    subclass_over_mutant_base,
)


@dataclass(frozen=True)
class Table3Result:
    """Everything experiment 2 produces."""

    plan: IncrementalPlan
    generation: GenerationReport
    incremental_run: MutationRun
    incremental_table: ScoreTable
    base_suite_run: Optional[MutationRun] = None
    full_suite_run: Optional[MutationRun] = None

    @property
    def base_suite_table(self) -> Optional[ScoreTable]:
        if self.base_suite_run is None:
            return None
        return build_score_table(self.base_suite_run, methods=TABLE3_METHODS)

    @property
    def full_suite_table(self) -> Optional[ScoreTable]:
        if self.full_suite_run is None:
            return None
        return build_score_table(self.full_suite_run, methods=TABLE3_METHODS)

    def summary(self) -> str:
        parts = [
            f"Table 3 (incremental suite, {len(self.plan.executed_suite)} cases): "
            f"score {self.incremental_table.total_score:.1%} over "
            f"{self.incremental_table.total_generated} base-class mutants"
        ]
        base_table = self.base_suite_table
        if base_table is not None:
            parts.append(f"base's own suite: {base_table.total_score:.1%}")
        full_table = self.full_suite_table
        if full_table is not None:
            parts.append(f"full subclass suite: {full_table.total_score:.1%}")
        return "; ".join(parts)


def run_table3(seed: int = EXPERIMENT_SEED,
               methods: Tuple[str, ...] = TABLE3_METHODS,
               with_contrast_runs: bool = False) -> Table3Result:
    """Execute experiment 2 end to end.

    ``with_contrast_runs`` additionally scores the same mutants under the
    base class's own suite and under the subclass's full suite — the
    comparison that substantiates the "retest inherited features" message.
    """
    plan = incremental_plan(seed)
    mutants, generation = generate_mutants(
        CObList, methods, ident_prefix="B", type_model=OBLIST_TYPE_MODEL
    )
    builder = subclass_over_mutant_base()

    incremental_run = MutationAnalysis(
        CSortableObList,
        plan.executed_suite,
        oracle=sortable_oracle(),
        class_builder=builder,
    ).analyze(mutants)
    incremental_table = build_score_table(incremental_run, methods=methods)

    base_suite_run = None
    full_suite_run = None
    if with_contrast_runs:
        base_suite_run = MutationAnalysis(
            CObList,
            oblist_suite(seed),
            oracle=oblist_oracle(),
        ).analyze(mutants)
        full_suite_run = MutationAnalysis(
            CSortableObList,
            sortable_suite(seed),
            oracle=sortable_oracle(),
            class_builder=builder,
        ).analyze(mutants)

    return Table3Result(
        plan=plan,
        generation=generation,
        incremental_run=incremental_run,
        incremental_table=incremental_table,
        base_suite_run=base_suite_run,
        full_suite_run=full_suite_run,
    )
