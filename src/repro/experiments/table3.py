"""Experiment 2 — Table 3: base-class faults under the incremental suite.

Reproduces sec. 4's second experiment: interface-mutate three methods of
the **base** class ``CObList``, re-derive ``CSortableObList`` over each
mutated base, and run only the subclass's *incremental* test set (the
test cases for transactions containing new methods; inherited-only
transactions are not rerun, per sec. 3.4.2).

The paper's headline: scores drop from 95.7% (Table 2) to **63.5%**,
showing that "not retesting a transaction in the context of the subclass,
although cost effective […], can be dangerous".  For contrast, this module
can also run the base class's own full suite and the subclass's full
(non-incremental) suite over the same mutants.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from ..components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from ..generator.suite import TestSuite
from ..history.incremental import IncrementalPlan
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.cache import MutationOutcomeCache
from ..mutation.generate import GenerationReport, generate_mutants
from ..mutation.parallel import ParallelMutationAnalysis
from ..mutation.score import ScoreTable, build_score_table
from ..obs import Telemetry
from .config import (
    EXPERIMENT_SEED,
    TABLE3_METHODS,
    incremental_plan,
    oblist_oracle,
    oblist_suite,
    sortable_oracle,
    sortable_suite,
    subclass_over_mutant_base,
)


@dataclass(frozen=True)
class Table3Result:
    """Everything experiment 2 produces."""

    plan: IncrementalPlan
    generation: GenerationReport
    incremental_run: MutationRun
    incremental_table: ScoreTable
    base_suite_run: Optional[MutationRun] = None
    full_suite_run: Optional[MutationRun] = None

    @property
    def base_suite_table(self) -> Optional[ScoreTable]:
        if self.base_suite_run is None:
            return None
        return build_score_table(self.base_suite_run, methods=TABLE3_METHODS)

    @property
    def full_suite_table(self) -> Optional[ScoreTable]:
        if self.full_suite_run is None:
            return None
        return build_score_table(self.full_suite_run, methods=TABLE3_METHODS)

    def summary(self) -> str:
        parts = [
            f"Table 3 (incremental suite, {len(self.plan.executed_suite)} cases): "
            f"score {self.incremental_table.total_score:.1%} over "
            f"{self.incremental_table.total_generated} base-class mutants"
        ]
        base_table = self.base_suite_table
        if base_table is not None:
            parts.append(f"base's own suite: {base_table.total_score:.1%}")
        full_table = self.full_suite_table
        if full_table is not None:
            parts.append(f"full subclass suite: {full_table.total_score:.1%}")
        return "; ".join(parts)


def _truncated(suite: TestSuite, max_cases: Optional[int]) -> TestSuite:
    if max_cases is None:
        return suite
    return replace(suite, cases=suite.cases[:max_cases])


def run_table3(seed: int = EXPERIMENT_SEED,
               methods: Tuple[str, ...] = TABLE3_METHODS,
               with_contrast_runs: bool = False,
               workers: int = 1,
               max_cases: Optional[int] = None,
               cache: Optional[MutationOutcomeCache] = None,
               prune: bool = True,
               static_triage: bool = True,
               batch_size: Optional[int] = None,
               telemetry: Optional[Telemetry] = None) -> Table3Result:
    """Execute experiment 2 end to end.

    ``with_contrast_runs`` additionally scores the same mutants under the
    base class's own suite and under the subclass's full suite — the
    comparison that substantiates the "retest inherited features" message.
    ``workers > 1`` runs every mutant battery on the parallel engine
    (serial-identical results); ``max_cases`` truncates the suites — a
    smoke/bench hook, not a paper configuration.  ``cache`` is shared by
    all three batteries: each run's entries are keyed by its own suite,
    oracle and builder, so the contrast runs never cross-contaminate.
    ``prune=False`` disables coverage-guided mutant×case pruning (verdicts
    are identical either way; pruning here must see through inheritance —
    base-class mutants are reached via inherited subclass methods, which
    the dynamic coverage recorder observes).  ``static_triage=False``
    disables the static equivalent-mutant triage pass (triage is applied
    to the shared ``CObList`` mutant pool once per battery; executed
    verdicts are identical either way).  ``batch_size`` sets the parallel
    engine's dispatch chunk (default adaptive); the batteries share one
    persistent worker pool, so the contrast runs reuse warm processes.
    """
    plan = incremental_plan(seed)
    mutants, generation = generate_mutants(
        CObList, methods, ident_prefix="B", type_model=OBLIST_TYPE_MODEL,
        telemetry=telemetry,
    )
    builder = subclass_over_mutant_base()

    def analysis(original_class, suite, oracle, class_builder=None):
        engine = ParallelMutationAnalysis if workers > 1 else MutationAnalysis
        return engine(
            original_class,
            _truncated(suite, max_cases),
            oracle=oracle,
            class_builder=class_builder,
            cache=cache,
            prune=prune,
            static_triage=static_triage,
            triage_type_model=OBLIST_TYPE_MODEL,
            telemetry=telemetry,
            **({"workers": workers, "batch_size": batch_size}
               if workers > 1 else {}),
        )

    incremental_run = analysis(
        CSortableObList, plan.executed_suite, sortable_oracle(), builder
    ).analyze(mutants)
    incremental_table = build_score_table(incremental_run, methods=methods)

    base_suite_run = None
    full_suite_run = None
    if with_contrast_runs:
        base_suite_run = analysis(
            CObList, oblist_suite(seed), oblist_oracle()
        ).analyze(mutants)
        full_suite_run = analysis(
            CSortableObList, sortable_suite(seed), sortable_oracle(), builder
        ).analyze(mutants)

    return Table3Result(
        plan=plan,
        generation=generation,
        incremental_run=incremental_run,
        incremental_table=incremental_table,
        base_suite_run=base_suite_run,
        full_suite_run=full_suite_run,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.table3 [--workers N] …``."""
    from .cli import (
        add_cache_arguments,
        add_obs_arguments,
        add_prune_arguments,
        add_server_argument,
        add_throughput_arguments,
        add_triage_arguments,
        add_workers_argument,
        batch_size_from_arguments,
        cache_from_arguments,
        compact_cache,
        finish_telemetry,
        print_cache_stats,
        prune_from_arguments,
        run_experiment_via_server,
        static_triage_from_arguments,
        telemetry_from_arguments,
    )

    parser = argparse.ArgumentParser(
        description="Run experiment 2 (Table 3: base-class faults, "
                    "incremental subclass suite)."
    )
    add_workers_argument(parser)
    add_server_argument(parser)
    parser.add_argument("--seed", type=int, default=EXPERIMENT_SEED,
                        help="suite-generation seed")
    parser.add_argument("--methods", nargs="+", default=list(TABLE3_METHODS),
                        help="base-class methods to mutate")
    parser.add_argument("--max-cases", type=int, default=None,
                        help="truncate the suites (smoke runs only)")
    parser.add_argument("--contrast", action="store_true",
                        help="also run the base-suite and full-suite contrasts")
    add_cache_arguments(parser)
    add_throughput_arguments(parser)
    add_prune_arguments(parser)
    add_triage_arguments(parser)
    add_obs_arguments(parser)
    arguments = parser.parse_args(argv)
    if arguments.server:
        return run_experiment_via_server(arguments.server, "table3",
                                         argv)
    telemetry = telemetry_from_arguments(arguments)
    cache = cache_from_arguments(arguments, telemetry=telemetry)
    result = run_table3(
        seed=arguments.seed,
        methods=tuple(arguments.methods),
        with_contrast_runs=arguments.contrast,
        workers=arguments.workers,
        max_cases=arguments.max_cases,
        cache=cache,
        prune=prune_from_arguments(arguments),
        static_triage=static_triage_from_arguments(arguments),
        batch_size=batch_size_from_arguments(arguments),
        telemetry=telemetry,
    )
    print(result.generation.summary())
    print(result.incremental_table.format())
    print(result.summary())
    if arguments.cache_stats:
        print_cache_stats(result.incremental_run, label="cache[incremental]")
        if result.base_suite_run is not None:
            print_cache_stats(result.base_suite_run, label="cache[base-suite]")
        if result.full_suite_run is not None:
            print_cache_stats(result.full_suite_run, label="cache[full-suite]")
    compact_cache(cache, arguments)
    finish_telemetry(telemetry, arguments)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
