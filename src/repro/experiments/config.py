"""Frozen configuration of the paper's experiments (sec. 4).

Everything a bench or example needs to re-run Tables 1–3 lives here, so the
experiment definition exists in exactly one place.  The choices and their
paper rationale:

* **Targets.**  Experiment 1 mutates the five ``CSortableObList`` methods
  of Table 2; experiment 2 mutates the three ``CObList`` methods of
  Table 3.
* **Type gate.**  Mutants are filtered by the C++-typing compatibility
  model (:data:`~repro.components.OBLIST_TYPE_MODEL`) — the paper's
  "compiled cleanly" requirement.  This lands the pool at 709 mutants for
  experiment 1 (paper: 700) and 176 for experiment 2 (paper: 159).
* **Oracle.**  Crash → assertion → selective output (final reported state
  plus access-method return values), matching the paper's partial assertion
  oracle "complemented by manually derived oracles".
* **Suites.**  The consumer-generated transaction-coverage suite for
  experiment 1; the *incremental* subclass suite (sec. 3.4.2) for
  experiment 2 — reused inherited-only transactions are not rerun.
* **Equivalence.**  Experiment 1 excludes probe-identified likely
  equivalents (the paper's manual analysis found 19); experiment 2 reports
  raw scores (the paper's Table 3 lists zero equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..components import (
    CObList,
    CSortableObList,
    OBLIST_TYPE_MODEL,
)
from ..generator.driver import DriverGenerator
from ..generator.suite import TestSuite
from ..harness.oracles import CompositeOracle, experiment_oracle
from ..history.incremental import IncrementalPlan, plan_subclass_testing
from ..mutation.analysis import ClassBuilder
from ..mutation.mutant import CompiledMutant, rebuild_subclass

#: Experiment 1 (Table 2) mutated methods, in the paper's row order.
#: The paper's rows are Sort1, Sort2, ShellSort, FindMax, FindMin.
TABLE2_METHODS: Tuple[str, ...] = (
    "Sort1", "Sort2", "ShellSort", "FindMax", "FindMin",
)

#: Experiment 2 (Table 3) mutated methods, in the paper's row order.
#: The paper's rows are AddHead, RemoveAt, RemovHead [sic].
TABLE3_METHODS: Tuple[str, ...] = ("AddHead", "RemoveAt", "RemoveHead")

#: Default suite seed; fixed so every rerun reproduces the same tables.
EXPERIMENT_SEED = 20010701


def sortable_suite(seed: int = EXPERIMENT_SEED) -> TestSuite:
    """The consumer-generated suite for ``CSortableObList`` (exp. 1)."""
    return DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()


def oblist_suite(seed: int = EXPERIMENT_SEED) -> TestSuite:
    """The base-class suite for ``CObList`` (the subclass's reuse pool)."""
    return DriverGenerator(CObList.__tspec__, seed=seed).generate()


def incremental_plan(seed: int = EXPERIMENT_SEED) -> IncrementalPlan:
    """The sec.-3.4.2 incremental plan for ``CSortableObList``."""
    return plan_subclass_testing(
        CObList.__tspec__,
        CSortableObList.__tspec__,
        oblist_suite(seed),
        seed=seed,
    )


def sortable_oracle() -> CompositeOracle:
    """The experiment oracle, parameterised on the subclass's t-spec."""
    return experiment_oracle(CSortableObList.__tspec__)


def oblist_oracle() -> CompositeOracle:
    """The experiment oracle, parameterised on the base class's t-spec."""
    return experiment_oracle(CObList.__tspec__)


@dataclass(frozen=True)
class SubclassOverMutantBase:
    """Experiment 2's class builder: the subclass re-derived over a mutated
    base, i.e. re-linking ``CSortableObList`` against a faulty ``CObList``.

    A dataclass rather than a closure so the builder pickles: the parallel
    mutation engine ships it to worker processes, which re-derive the
    subclass over each locally recompiled mutant base.
    """

    subclass: type
    base: type

    def __call__(self, mutant: CompiledMutant) -> type:
        return rebuild_subclass(self.subclass, self.base, mutant.build_class())


def subclass_over_mutant_base() -> ClassBuilder:
    """The experiment-2 builder bound to the paper's class pair."""
    return SubclassOverMutantBase(CSortableObList, CObList)
