"""The paper's experiments, frozen and re-runnable.

One module per regenerated artefact: :mod:`table1` (operators),
:mod:`table2` (experiment 1), :mod:`table3` (experiment 2),
:mod:`figures` (Figures 1–7), :mod:`ablations` (design-decision studies),
with the shared configuration in :mod:`config`.
"""

from .ablations import (
    CoverageAblationResult,
    EdgeBoundRow,
    OracleAblationResult,
    OverheadResult,
    coverage_ablation,
    edge_bound_ablation,
    oracle_ablation,
    test_mode_overhead,
)
from .config import (
    EXPERIMENT_SEED,
    SubclassOverMutantBase,
    TABLE2_METHODS,
    TABLE3_METHODS,
    incremental_plan,
    oblist_oracle,
    oblist_suite,
    sortable_oracle,
    sortable_suite,
    subclass_over_mutant_base,
)
from .figures import (
    Figure2Result,
    Figure45Result,
    Figure67Result,
    figure1_product_interface,
    figure2_product_tfm,
    figure3_tspec_roundtrip,
    figure45_bit_demo,
    figure67_generated_driver,
    provider_binding,
)
from .table1 import OPERATOR_DEFINITIONS, OperatorDemo, Table1Result, run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3

__all__ = [
    "CoverageAblationResult",
    "EXPERIMENT_SEED",
    "EdgeBoundRow",
    "Figure2Result",
    "Figure45Result",
    "Figure67Result",
    "OPERATOR_DEFINITIONS",
    "OperatorDemo",
    "OracleAblationResult",
    "OverheadResult",
    "SubclassOverMutantBase",
    "TABLE2_METHODS",
    "TABLE3_METHODS",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "coverage_ablation",
    "edge_bound_ablation",
    "figure1_product_interface",
    "figure2_product_tfm",
    "figure3_tspec_roundtrip",
    "figure45_bit_demo",
    "figure67_generated_driver",
    "incremental_plan",
    "oblist_oracle",
    "oblist_suite",
    "oracle_ablation",
    "provider_binding",
    "run_table1",
    "run_table2",
    "run_table3",
    "sortable_oracle",
    "sortable_suite",
    "subclass_over_mutant_base",
    "test_mode_overhead",
]
