"""Experiment 1 — Table 2: fault-revealing power on ``CSortableObList``.

Reproduces sec. 4's first experiment: interface-mutate the five sorting /
extremum methods of the sortable list, run the consumer-generated
transaction-coverage suite over every mutant, classify kills with the
composite oracle, analyse the survivors for equivalence, and render the
Table-2 score grid.

Paper reference points (for EXPERIMENTS.md):

* 700 mutants over 5 methods; 652 killed; 19 equivalent; score 95.7%;
* per-operator scores between 85.7% (IndVarBitNeg) and 98.2% (IndVarRepLoc);
* 233 new test cases for a 16-node / 43-link model (+329 reused);
* 59 of the 652 kills were due to assertion violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..components import CSortableObList, OBLIST_TYPE_MODEL
from ..generator.suite import TestSuite
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.equivalence import EquivalenceReport, probe_equivalence
from ..mutation.generate import GenerationReport, generate_mutants
from ..mutation.score import ScoreTable, build_score_table
from .config import (
    EXPERIMENT_SEED,
    TABLE2_METHODS,
    sortable_oracle,
    sortable_suite,
)


@dataclass(frozen=True)
class Table2Result:
    """Everything experiment 1 produces."""

    suite: TestSuite
    generation: GenerationReport
    run: MutationRun
    equivalence: Optional[EquivalenceReport]
    table: ScoreTable

    def summary(self) -> str:
        equivalents = self.table.total_equivalent
        return (
            f"Table 2: {self.table.total_generated} mutants, "
            f"{self.table.total_killed} killed, {equivalents} equivalent, "
            f"score {self.table.total_score:.1%} "
            f"({self.table.assertion_kills} kills by assertion)"
        )


def run_table2(seed: int = EXPERIMENT_SEED,
               methods: Tuple[str, ...] = TABLE2_METHODS,
               with_equivalence: bool = True,
               stop_on_first_kill: bool = True) -> Table2Result:
    """Execute experiment 1 end to end."""
    suite = sortable_suite(seed)
    mutants, generation = generate_mutants(
        CSortableObList, methods, type_model=OBLIST_TYPE_MODEL
    )
    analysis = MutationAnalysis(
        CSortableObList,
        suite,
        oracle=sortable_oracle(),
        stop_on_first_kill=stop_on_first_kill,
    )
    run = analysis.analyze(mutants)

    equivalence = None
    if with_equivalence:
        survivor_idents = {
            outcome.mutant.ident for outcome in run.outcomes if not outcome.killed
        }
        survivors = [m for m in mutants if m.ident in survivor_idents]
        equivalence = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors
        )

    table = build_score_table(run, equivalence, methods=methods)
    return Table2Result(
        suite=suite,
        generation=generation,
        run=run,
        equivalence=equivalence,
        table=table,
    )
