"""Experiment 1 — Table 2: fault-revealing power on ``CSortableObList``.

Reproduces sec. 4's first experiment: interface-mutate the five sorting /
extremum methods of the sortable list, run the consumer-generated
transaction-coverage suite over every mutant, classify kills with the
composite oracle, analyse the survivors for equivalence, and render the
Table-2 score grid.

Paper reference points (for EXPERIMENTS.md):

* 700 mutants over 5 methods; 652 killed; 19 equivalent; score 95.7%;
* per-operator scores between 85.7% (IndVarBitNeg) and 98.2% (IndVarRepLoc);
* 233 new test cases for a 16-node / 43-link model (+329 reused);
* 59 of the 652 kills were due to assertion violation.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from ..components import CSortableObList, OBLIST_TYPE_MODEL
from ..generator.suite import TestSuite
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.cache import MutationOutcomeCache
from ..mutation.equivalence import EquivalenceReport, probe_equivalence
from ..mutation.generate import GenerationReport, generate_mutants
from ..mutation.parallel import ParallelMutationAnalysis
from ..mutation.score import ScoreTable, build_score_table
from ..obs import Telemetry
from .config import (
    EXPERIMENT_SEED,
    TABLE2_METHODS,
    sortable_oracle,
    sortable_suite,
)


@dataclass(frozen=True)
class Table2Result:
    """Everything experiment 1 produces."""

    suite: TestSuite
    generation: GenerationReport
    run: MutationRun
    equivalence: Optional[EquivalenceReport]
    table: ScoreTable

    def summary(self) -> str:
        equivalents = self.table.total_equivalent
        return (
            f"Table 2: {self.table.total_generated} mutants, "
            f"{self.table.total_killed} killed, {equivalents} equivalent, "
            f"score {self.table.total_score:.1%} "
            f"({self.table.assertion_kills} kills by assertion)"
        )


def run_table2(seed: int = EXPERIMENT_SEED,
               methods: Tuple[str, ...] = TABLE2_METHODS,
               with_equivalence: bool = True,
               stop_on_first_kill: bool = True,
               workers: int = 1,
               max_cases: Optional[int] = None,
               cache: Optional[MutationOutcomeCache] = None,
               prune: bool = True,
               static_triage: bool = True,
               batch_size: Optional[int] = None,
               telemetry: Optional[Telemetry] = None) -> Table2Result:
    """Execute experiment 1 end to end.

    ``workers > 1`` runs the mutant battery on the parallel engine (results
    are field-for-field identical to the serial run).  ``max_cases``
    truncates the suite — a smoke/bench hook, not a paper configuration.
    ``cache`` replays unchanged mutant verdicts from the incremental
    outcome cache (cached runs are ``same_results``-identical to fresh);
    ``prune=False`` disables coverage-guided mutant×case pruning (verdicts
    are identical either way).  ``static_triage=False`` disables the
    static equivalent-mutant triage pass; with it on (the default),
    statically-proven mutants are never dispatched, the equivalence probe
    skips them, and every *executed* mutant's verdict is identical to the
    untriaged run.  ``batch_size`` sets the parallel engine's dispatch
    chunk (default adaptive; verdicts identical at every size).
    ``telemetry`` attaches a run-telemetry session (rows are identical
    with or without it).
    """
    suite = sortable_suite(seed)
    if max_cases is not None:
        suite = replace(suite, cases=suite.cases[:max_cases])
    mutants, generation = generate_mutants(
        CSortableObList, methods, type_model=OBLIST_TYPE_MODEL,
        telemetry=telemetry,
    )
    engine = ParallelMutationAnalysis if workers > 1 else MutationAnalysis
    analysis = engine(
        CSortableObList,
        suite,
        oracle=sortable_oracle(),
        stop_on_first_kill=stop_on_first_kill,
        cache=cache,
        prune=prune,
        static_triage=static_triage,
        triage_type_model=OBLIST_TYPE_MODEL,
        telemetry=telemetry,
        **({"workers": workers, "batch_size": batch_size}
           if workers > 1 else {}),
    )
    run = analysis.analyze(mutants)

    equivalence = None
    if with_equivalence:
        survivor_idents = {
            outcome.mutant.ident for outcome in run.outcomes if not outcome.killed
        }
        survivors = [m for m in mutants if m.ident in survivor_idents]
        equivalence = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            triage=run.triage,
        )

    table = build_score_table(run, equivalence, methods=methods)
    return Table2Result(
        suite=suite,
        generation=generation,
        run=run,
        equivalence=equivalence,
        table=table,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.table2 [--workers N] …``."""
    from .cli import (
        add_cache_arguments,
        add_obs_arguments,
        add_prune_arguments,
        add_server_argument,
        add_throughput_arguments,
        add_triage_arguments,
        add_workers_argument,
        batch_size_from_arguments,
        cache_from_arguments,
        compact_cache,
        finish_telemetry,
        print_cache_stats,
        prune_from_arguments,
        run_experiment_via_server,
        static_triage_from_arguments,
        telemetry_from_arguments,
    )

    parser = argparse.ArgumentParser(
        description="Run experiment 1 (Table 2: CSortableObList mutation)."
    )
    add_workers_argument(parser)
    add_server_argument(parser)
    parser.add_argument("--seed", type=int, default=EXPERIMENT_SEED,
                        help="suite-generation seed")
    parser.add_argument("--methods", nargs="+", default=list(TABLE2_METHODS),
                        help="methods to mutate (default: the Table 2 rows)")
    parser.add_argument("--max-cases", type=int, default=None,
                        help="truncate the suite (smoke runs only)")
    parser.add_argument("--no-equivalence", action="store_true",
                        help="skip the equivalence probe")
    add_cache_arguments(parser)
    add_throughput_arguments(parser)
    add_prune_arguments(parser)
    add_triage_arguments(parser)
    add_obs_arguments(parser)
    arguments = parser.parse_args(argv)
    if arguments.server:
        return run_experiment_via_server(arguments.server, "table2",
                                         argv)
    telemetry = telemetry_from_arguments(arguments)
    cache = cache_from_arguments(arguments, telemetry=telemetry)
    result = run_table2(
        seed=arguments.seed,
        methods=tuple(arguments.methods),
        with_equivalence=not arguments.no_equivalence,
        workers=arguments.workers,
        max_cases=arguments.max_cases,
        cache=cache,
        prune=prune_from_arguments(arguments),
        static_triage=static_triage_from_arguments(arguments),
        batch_size=batch_size_from_arguments(arguments),
        telemetry=telemetry,
    )
    print(result.generation.summary())
    print(result.table.format())
    print(result.run.summary())
    print(result.summary())
    if arguments.cache_stats:
        print_cache_stats(result.run)
    compact_cache(cache, arguments)
    finish_telemetry(telemetry, arguments)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
