"""Shared CLI plumbing for the table experiments.

Every table CLI accepts the same incremental-run flags:

* ``--cache-dir DIR`` — replay mutant outcomes from (and record them into)
  a content-addressed cache under ``DIR``; a warm rerun of an unchanged
  experiment executes zero mutant test cases (see
  :mod:`repro.mutation.cache` and README "Incremental runs");
* ``--no-cache`` — force caching off even when a wrapper always passes
  ``--cache-dir``;
* ``--cache-stats`` — print hit/miss/invalidation counters after each
  mutation run (lines start with ``cache`` so table output can be compared
  across runs with a simple filter).

They also share the coverage-guided pruning switch:

* ``--no-prune`` — disable coverage-guided mutant×case pruning (on by
  default; pruning skips test cases whose reference execution never
  reaches the mutated method — verdicts are bit-identical either way, see
  :mod:`repro.mutation.coverage`).
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..mutation.analysis import MutationRun
from ..mutation.cache import MutationOutcomeCache


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("incremental runs (outcome cache)")
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed mutant-outcome cache directory "
             "(warm reruns of an unchanged experiment re-execute nothing)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the outcome cache even if --cache-dir is given",
    )
    group.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss/invalidation counters after the run",
    )


def add_prune_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("coverage-guided pruning")
    group.add_argument(
        "--no-prune", action="store_true",
        help="disable coverage-guided mutant×case pruning (pruning skips "
             "cases that never execute the mutated method; verdicts are "
             "identical with or without it)",
    )


def prune_from_arguments(arguments: argparse.Namespace) -> bool:
    """Whether pruning is enabled (default) under the parsed flags."""
    return not arguments.no_prune


def cache_from_arguments(arguments: argparse.Namespace
                         ) -> Optional[MutationOutcomeCache]:
    """The cache the flags describe, or ``None`` when caching is off."""
    if arguments.no_cache or not arguments.cache_dir:
        return None
    return MutationOutcomeCache(arguments.cache_dir)


def print_cache_stats(run: Optional[MutationRun], label: str = "cache") -> None:
    """One ``cache…`` line per run (kept greppable for CI comparisons)."""
    if run is None or run.cache_stats is None:
        print(f"{label}: disabled")
        return
    print(f"{label}: {run.cache_stats.format()}")
