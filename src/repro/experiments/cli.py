"""Shared CLI plumbing for the table experiments.

Every table CLI accepts the same incremental-run flags:

* ``--cache-dir DIR`` — replay mutant outcomes from (and record them into)
  a content-addressed cache under ``DIR``; a warm rerun of an unchanged
  experiment executes zero mutant test cases (see
  :mod:`repro.mutation.cache` and README "Incremental runs");
* ``--no-cache`` — force caching off even when a wrapper always passes
  ``--cache-dir``;
* ``--cache-stats`` — print hit/miss/invalidation counters after each
  mutation run (lines start with ``cache`` so table output can be compared
  across runs with a simple filter);
* ``--cache-compact`` — rewrite the cache's segment file after the run,
  dropping superseded and damaged records (prints a ``cache compact:``
  line).

And the dispatch-throughput knob:

* ``--batch-size N`` — mutants per worker dispatch chunk under
  ``--workers`` > 1 (default: adaptive, ~``dispatched / (8 × workers)``;
  verdicts are identical at every batch size).

They also share the coverage-guided pruning switch:

* ``--no-prune`` — disable coverage-guided mutant×case pruning (on by
  default; pruning skips test cases whose reference execution never
  reaches the mutated method — verdicts are bit-identical either way, see
  :mod:`repro.mutation.coverage`).

And the static-triage switch:

* ``--no-static-triage`` — disable the static equivalent-mutant triage
  pass (on by default; triage proves mutants equivalent by normalized-AST
  or bytecode identity and groups bytecode-redundant mutants so only one
  representative executes — every *executed* mutant's verdict is
  bit-identical either way, see :mod:`repro.mutation.triage`).

And the run-telemetry flags (:mod:`repro.obs`):

* ``--trace-out PATH`` — stream schema-versioned JSONL span/counter
  events for the whole run (generation, reference pass, per-mutant and
  per-case execution, worker lifecycle, cache counters) to ``PATH``;
* ``--obs-summary`` — print the human-readable telemetry summary after
  the run (every line starts with ``obs`` so row comparisons can strip
  it, like the ``cache…`` lines).

Telemetry is off when neither flag is given — zero events are emitted —
and changes no verdicts when on (DESIGN §5 documents the guarantee).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..mutation.analysis import MutationRun
from ..mutation.cache import MutationOutcomeCache
from ..obs import JsonlSink, Telemetry


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("incremental runs (outcome cache)")
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed mutant-outcome cache directory "
             "(warm reruns of an unchanged experiment re-execute nothing)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the outcome cache even if --cache-dir is given",
    )
    group.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss/invalidation counters after the run",
    )
    group.add_argument(
        "--cache-compact", action="store_true",
        help="compact the cache segment file after the run (drops "
             "superseded and damaged records; keeps every live verdict)",
    )


def add_workers_argument(parser: argparse.ArgumentParser,
                         default: int = 1) -> None:
    """The shared ``--workers N`` flag (serial when 1; the parallel
    engine's verdicts are field-for-field identical at any count)."""
    parser.add_argument(
        "--workers", type=int, default=default, metavar="N",
        help="worker processes for mutation analysis "
             f"(default {default}; 1 = serial engine, verdicts identical)",
    )


def add_throughput_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("dispatch throughput")
    group.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="mutants per worker dispatch chunk when --workers > 1 "
             "(default: adaptive; verdicts identical at every size)",
    )


def add_prune_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("coverage-guided pruning")
    group.add_argument(
        "--no-prune", action="store_true",
        help="disable coverage-guided mutant×case pruning (pruning skips "
             "cases that never execute the mutated method; verdicts are "
             "identical with or without it)",
    )


def add_triage_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("static equivalent-mutant triage")
    group.add_argument(
        "--no-static-triage", action="store_true",
        help="disable the static triage pass (triage proves equivalents "
             "by AST/bytecode identity and executes one representative "
             "per redundancy class; executed verdicts are identical "
             "with or without it)",
    )


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("run telemetry")
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write schema-versioned JSONL telemetry events to PATH "
             "(spans, point events, final counters; validate with "
             "`python -m repro.obs PATH`)",
    )
    group.add_argument(
        "--obs-summary", action="store_true",
        help="print the telemetry summary after the run (lines start "
             "with 'obs' for easy filtering)",
    )


def add_server_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--server ADDR`` flag: run the experiment as a job on
    a resident mutation-analysis daemon (:mod:`repro.service`) instead
    of in-process; the daemon's captured output is reprinted locally."""
    parser.add_argument(
        "--server", default=None, metavar="ADDR",
        help="run on a resident mutation service (UNIX socket path or "
             "host:port) instead of in-process; all other flags are "
             "forwarded to the daemon",
    )


def strip_server_argument(argv: Optional[Sequence[str]]) -> List[str]:
    """``argv`` (or ``sys.argv[1:]``) without ``--server`` and its value
    — the argument vector the daemon replays in-process."""
    raw = list(argv) if argv is not None else list(sys.argv[1:])
    cleaned: List[str] = []
    skip_next = False
    for item in raw:
        if skip_next:
            skip_next = False
            continue
        if item == "--server":
            skip_next = True
            continue
        if item.startswith("--server="):
            continue
        cleaned.append(item)
    return cleaned


def run_experiment_via_server(server: str, table: str,
                              argv: Optional[Sequence[str]]) -> int:
    """Submit a table experiment to a daemon, wait, reprint its output.

    The exit code is the daemon-side ``main``'s — a remote run fails the
    same way a local one does.
    """
    from ..service.client import ServiceClient

    with ServiceClient(server) as client:
        job_id = client.submit_experiment(
            table, strip_server_argument(argv)
        )
        reply = client.wait(job_id)
    state = reply.get("state")
    result = reply.get("result") or {}
    if state != "done":
        reason = (reply.get("kill_reason") or reply.get("error")
                  or f"job ended in state {state!r}")
        print(f"error: {table} on {server}: {reason}", file=sys.stderr)
        return 1
    print(result.get("output", ""), end="")
    return int(result.get("exit_code", 0))


def batch_size_from_arguments(arguments: argparse.Namespace) -> Optional[int]:
    """The explicit dispatch chunk size, or ``None`` (adaptive default)."""
    batch_size = getattr(arguments, "batch_size", None)
    if batch_size is not None and batch_size < 1:
        raise SystemExit("--batch-size must be at least 1")
    return batch_size


def prune_from_arguments(arguments: argparse.Namespace) -> bool:
    """Whether pruning is enabled (default) under the parsed flags."""
    return not arguments.no_prune


def static_triage_from_arguments(arguments: argparse.Namespace) -> bool:
    """Whether static triage is enabled (default) under the parsed flags."""
    return not arguments.no_static_triage


def telemetry_from_arguments(arguments: argparse.Namespace
                             ) -> Optional[Telemetry]:
    """The telemetry session the flags describe, or ``None`` (off).

    Off is the default: with neither ``--trace-out`` nor
    ``--obs-summary``, no session exists and the pipeline runs on the
    shared null object, emitting zero events.
    """
    if not arguments.trace_out and not arguments.obs_summary:
        return None
    sink = JsonlSink(arguments.trace_out) if arguments.trace_out else None
    return Telemetry(sink=sink)


def finish_telemetry(telemetry: Optional[Telemetry],
                     arguments: argparse.Namespace) -> None:
    """Close the session (emitting the counters event) and print the
    summary when asked."""
    if telemetry is None:
        return
    telemetry.close()
    if arguments.obs_summary:
        print(telemetry.summary())


def cache_from_arguments(arguments: argparse.Namespace,
                         telemetry: Optional[Telemetry] = None
                         ) -> Optional[MutationOutcomeCache]:
    """The cache the flags describe, or ``None`` when caching is off."""
    if arguments.no_cache or not arguments.cache_dir:
        return None
    return MutationOutcomeCache(arguments.cache_dir, telemetry=telemetry)


def print_cache_stats(run: Optional[MutationRun], label: str = "cache") -> None:
    """One ``cache…`` line per run (kept greppable for CI comparisons)."""
    if run is None or run.cache_stats is None:
        print(f"{label}: disabled")
        return
    print(f"{label}: {run.cache_stats.format()}")


def compact_cache(cache: Optional[MutationOutcomeCache],
                  arguments: argparse.Namespace) -> None:
    """Compact the store when ``--cache-compact`` was given.

    Prints one ``cache compact: …`` line — prefixed ``cache`` like the
    stats lines, so CI row diffs strip it with the same filter.
    """
    if cache is None or not getattr(arguments, "cache_compact", False):
        return
    report = cache.compact()
    print(f"cache compact: {report.format()}")
