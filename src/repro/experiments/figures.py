"""The paper's figures, regenerated as runnable artefacts.

* Figure 1 — the ``Product`` class: :func:`figure1_product_interface`
  renders its interface from the embedded t-spec.
* Figure 2 — the ``Product`` TFM with the use-case path highlighted:
  :func:`figure2_product_tfm` builds the graph, enumerates transactions,
  and renders ASCII/DOT with *create → obtain data → remove → destroy*
  marked.
* Figure 3 — the textual t-spec format: :func:`figure3_tspec_roundtrip`
  serialises the Product spec and re-parses it.
* Figures 4–5 — the ``BuiltInTest`` class and the assertion macros:
  :func:`figure45_bit_demo` provokes each violation kind on a seeded-fault
  component and reports BIT's behaviour in and out of test mode.
* Figures 6–7 — the generated test case / executable suite:
  :func:`figure67_generated_driver` emits a runnable driver module for
  ``Product`` and executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..bit import access
from ..bit.builtintest import BuiltInTest
from ..components import Product, Provider, reset_database
from ..core.errors import (
    InvariantViolation,
    PostconditionViolation,
    PreconditionViolation,
    TestModeError,
)
from ..generator.codegen import generate_driver_source
from ..generator.driver import DriverGenerator
from ..generator.values import TypeBinding
from ..tfm.analysis import ModelMetrics, analyze
from ..tfm.graph import TransactionFlowGraph
from ..tfm.render import render_ascii, render_dot
from ..tfm.transactions import Transaction, enumerate_transactions
from ..tspec.parser import parse_tspec
from ..tspec.writer import write_tspec


def provider_binding() -> TypeBinding:
    """The tester-supplied factory completing Provider-typed parameters."""
    return TypeBinding({
        "Provider": lambda rng: Provider(
            rng.printable_string(1, 10) or "provider", rng.randint(0, 9999)
        ),
    })


# ---------------------------------------------------------------------------
# Figures 1–2: Product and its TFM
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Result:
    metrics: ModelMetrics
    transaction_count: int
    use_case_path: Transaction
    ascii_rendering: str
    dot_rendering: str

    def summary(self) -> str:
        return (
            f"Product TFM: {self.metrics.nodes} nodes, {self.metrics.links} links, "
            f"{self.transaction_count} transactions; use case: {self.use_case_path}"
        )


def figure1_product_interface() -> str:
    """Figure 1: the Product interface, from its embedded spec."""
    spec = Product.__tspec__
    lines = [spec.describe(), ""]
    for method in spec.methods:
        lines.append(f"  {method.category.value:<12} {method.signature()}")
    return "\n".join(lines)


def figure2_product_tfm() -> Figure2Result:
    """Figure 2: the Product TFM with the use-case path highlighted."""
    spec = Product.__tspec__
    graph = TransactionFlowGraph(spec)
    enumeration = enumerate_transactions(graph)

    # The scenario of sec. 3.2: 1. create; 2. obtain data; 3. remove from
    # the database; 4. destroy — i.e. birth → show → remove → death.
    node_of = {}
    for ident in graph.node_idents:
        names = {method.name for method in graph.node_methods(ident)}
        if "ShowAttributes" in names:
            node_of["show"] = ident
        elif "RemoveProduct" in names:
            node_of["remove"] = ident
    birth = graph.birth_nodes[0]
    death = graph.death_nodes[0]
    use_case = Transaction(path=(birth, node_of["show"], node_of["remove"], death))
    if not graph.validate_path(use_case.path):
        raise AssertionError("use-case path is not a legal transaction")

    return Figure2Result(
        metrics=analyze(graph),
        transaction_count=len(enumeration),
        use_case_path=use_case,
        ascii_rendering=render_ascii(graph, highlight=use_case),
        dot_rendering=render_dot(graph, highlight=use_case),
    )


def figure3_tspec_roundtrip() -> Tuple[str, bool]:
    """Figure 3: the textual t-spec, plus whether it round-trips exactly."""
    spec = Product.__tspec__
    text = write_tspec(spec)
    reparsed = parse_tspec(text)
    return text, reparsed == spec.normalized()


# ---------------------------------------------------------------------------
# Figures 4–5: BuiltInTest and the assertion macros
# ---------------------------------------------------------------------------


class _FaultySensor(BuiltInTest):
    """Demo component with one seeded fault per assertion kind."""

    def __init__(self):
        self.reading = 0

    def class_invariant(self) -> bool:
        return self.reading >= 0

    def set_reading(self, value: int) -> None:
        from ..bit.assertions import check_precondition

        check_precondition(value <= 1000, subject="_FaultySensor.set_reading",
                           message="reading out of sensor range")
        self.reading = value  # seeded fault: negative values accepted

    def calibrate(self) -> int:
        from ..bit.assertions import check_postcondition

        self.reading = self.reading - 1  # seeded fault: drifts below zero
        check_postcondition(self.reading >= 0,
                            subject="_FaultySensor.calibrate")
        return self.reading


@dataclass(frozen=True)
class Figure45Result:
    """What the BIT capabilities did in and out of test mode."""

    violations_in_test_mode: Dict[str, str]
    silent_outside_test_mode: bool
    bit_blocked_outside_test_mode: bool
    reporter_state: Dict[str, object]

    def summary(self) -> str:
        kinds = ", ".join(sorted(self.violations_in_test_mode))
        return (
            f"assertions raised in test mode: [{kinds}]; "
            f"outside test mode: silent={self.silent_outside_test_mode}, "
            f"BIT blocked={self.bit_blocked_outside_test_mode}"
        )


def figure45_bit_demo() -> Figure45Result:
    """Provoke each Figure-5 macro and exercise the access control."""
    violations: Dict[str, str] = {}

    with access.test_mode():
        sensor = _FaultySensor()
        try:
            sensor.set_reading(5000)
        except PreconditionViolation as violation:
            violations["pre"] = str(violation)
        sensor.reading = 0
        try:
            sensor.calibrate()
        except PostconditionViolation as violation:
            violations["post"] = str(violation)
        sensor.reading = -7
        try:
            sensor.invariant_test()
        except InvariantViolation as violation:
            violations["invariant"] = str(violation)
        sensor.reading = 3
        report = sensor.reporter()

    # Outside test mode the same faults pass silently (checks compiled out)
    # and the BIT interface itself is unreachable.
    access.reset()
    sensor = _FaultySensor()
    silent = True
    try:
        sensor.set_reading(5000)
        sensor.reading = -7
    except Exception:
        silent = False
    blocked = False
    try:
        sensor.invariant_test()
    except TestModeError:
        blocked = True

    return Figure45Result(
        violations_in_test_mode=violations,
        silent_outside_test_mode=silent,
        bit_blocked_outside_test_mode=blocked,
        reporter_state=report.as_dict(),
    )


# ---------------------------------------------------------------------------
# Figures 6–7: generated driver source
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure67Result:
    driver_source: str
    test_case_count: int
    passed: int
    failed: int

    def summary(self) -> str:
        return (
            f"generated driver with {self.test_case_count} test cases: "
            f"{self.passed} passed, {self.failed} failed"
        )


def figure67_generated_driver(max_cases: int = 12,
                              log_path: Optional[str] = None) -> Figure67Result:
    """Emit a Product driver module (Figure 6/7) and execute it."""
    reset_database()
    suite = DriverGenerator(
        Product.__tspec__, bindings=provider_binding()
    ).generate()
    small = suite.filtered(lambda case: True)
    if len(small.cases) > max_cases:
        from dataclasses import replace
        small = replace(small, cases=small.cases[:max_cases])

    source = generate_driver_source(
        small,
        component_module="repro.components",
        component_class="Product",
        log_path=log_path or "Result.txt",
    )

    namespace: Dict[str, object] = {"__name__": "generated_driver"}
    exec(compile(source, "<generated driver>", "exec"), namespace)  # noqa: S102
    import io

    passed = failed = 0
    log_stream = io.StringIO()

    run_all = namespace["run_all"]
    if log_path is None:
        # Execute case functions directly against an in-memory log to avoid
        # touching the filesystem.
        from ..bit.access import test_mode as _test_mode

        with _test_mode():
            for case_function in namespace["ALL_TEST_CASES"]:
                if case_function(Product, log_stream):
                    passed += 1
                else:
                    failed += 1
    else:
        passed, failed = run_all(Product, log_path)

    return Figure67Result(
        driver_source=source,
        test_case_count=len(small.cases),
        passed=passed,
        failed=failed,
    )
