"""Ablations over the design decisions DESIGN.md calls out.

1. **Oracle contribution** (:func:`oracle_ablation`) — the paper reports
   that "assertions, besides improving testability, help to improve
   fault-revealing effectiveness [… but] assertions alone do not constitute
   an effective oracle".  We score the same mutant pool under: assertions
   only, output only, and the full composite.
2. **Coverage criterion** (:func:`coverage_ablation`) — transaction coverage
   is the weakest criterion (sec. 3.4.1); we compare its suite size and
   kill power against greedy node-coverage and link-coverage suites.
3. **Loop bound** (:func:`edge_bound_ablation`) — how enumeration grows with
   the per-edge revisit bound, on models with cycles.
4. **Test-mode cost** (:func:`test_mode_overhead`) — BIT access control
   promises near-zero production overhead; measure instrumented vs plain
   classes in and out of test mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..bit import access
from ..bit.instrument import compile_component
from ..components import BankAccount, BoundedStack, CSortableObList, OBLIST_TYPE_MODEL
from ..harness.oracles import (
    CompositeOracle,
    assertions_only_oracle,
    output_only_oracle,
)
from ..mutation.analysis import MutationAnalysis
from ..mutation.generate import generate_mutants
from ..tfm.coverage import (
    measure,
    select_for_link_coverage,
    select_for_node_coverage,
)
from ..tfm.graph import TransactionFlowGraph
from ..tfm.transactions import enumerate_transactions
from .config import TABLE2_METHODS, sortable_oracle, sortable_suite


def _sampled_mutants(stride: int = 1):
    """The Table-2 mutant pool, optionally subsampled for quick runs."""
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL
    )
    if stride > 1:
        mutants = mutants[::stride]
    return mutants


# ---------------------------------------------------------------------------
# 1. Oracle contribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OracleAblationResult:
    total_mutants: int
    kills_by_oracle: Dict[str, int]

    def format(self) -> str:
        lines = [f"oracle ablation over {self.total_mutants} mutants:"]
        for name, kills in sorted(self.kills_by_oracle.items()):
            share = kills / self.total_mutants if self.total_mutants else 0.0
            lines.append(f"  {name:<18} kills {kills:4d}  ({share:.1%})")
        return "\n".join(lines)


def oracle_ablation(stride: int = 4) -> OracleAblationResult:
    """Score the Table-2 pool under each oracle configuration."""
    mutants = _sampled_mutants(stride)
    suite = sortable_suite()
    configurations: Sequence[Tuple[str, CompositeOracle]] = (
        ("assertions_only", assertions_only_oracle()),
        ("output_only", output_only_oracle()),
        ("full_composite", sortable_oracle()),
    )
    kills: Dict[str, int] = {}
    for name, oracle in configurations:
        run = MutationAnalysis(CSortableObList, suite, oracle=oracle).analyze(mutants)
        kills[name] = len(run.killed)
    return OracleAblationResult(total_mutants=len(mutants), kills_by_oracle=kills)


# ---------------------------------------------------------------------------
# 2. Coverage criterion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageAblationRow:
    criterion: str
    transactions: int
    cases: int
    kills: int
    total_mutants: int

    @property
    def kill_ratio(self) -> float:
        return self.kills / self.total_mutants if self.total_mutants else 0.0


@dataclass(frozen=True)
class CoverageAblationResult:
    rows: Tuple[CoverageAblationRow, ...]

    def format(self) -> str:
        lines = ["coverage-criterion ablation (CSortableObList):"]
        for row in self.rows:
            lines.append(
                f"  {row.criterion:<22} {row.transactions:4d} transactions, "
                f"{row.cases:4d} cases, kills {row.kills}/{row.total_mutants} "
                f"({row.kill_ratio:.1%})"
            )
        return "\n".join(lines)


def coverage_ablation(stride: int = 4) -> CoverageAblationResult:
    """Transaction coverage vs greedy node/link coverage suites."""
    mutants = _sampled_mutants(stride)
    spec = CSortableObList.__tspec__
    graph = TransactionFlowGraph(spec)
    enumeration = enumerate_transactions(graph)
    full_suite = sortable_suite()

    selections = (
        ("transaction coverage", tuple(enumeration)),
        ("node coverage (greedy)", select_for_node_coverage(enumeration)),
        ("link coverage (greedy)", select_for_link_coverage(enumeration)),
    )
    rows = []
    oracle = sortable_oracle()
    for criterion, chosen in selections:
        chosen_idents = {transaction.ident for transaction in chosen}
        suite = full_suite.only_transactions(tuple(chosen_idents))
        run = MutationAnalysis(CSortableObList, suite, oracle=oracle).analyze(mutants)
        report = measure(graph, list(chosen), enumeration)
        assert report.nodes_covered  # selections always cover something
        rows.append(
            CoverageAblationRow(
                criterion=criterion,
                transactions=len(chosen),
                cases=len(suite),
                kills=len(run.killed),
                total_mutants=len(mutants),
            )
        )
    return CoverageAblationResult(rows=tuple(rows))


# ---------------------------------------------------------------------------
# 3. Loop (edge) bound
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeBoundRow:
    class_name: str
    edge_bound: int
    transactions: int
    truncated: bool


def edge_bound_ablation(bounds: Sequence[int] = (1, 2, 3),
                        max_transactions: int = 50_000,
                        ) -> Tuple[EdgeBoundRow, ...]:
    """Transaction counts per edge bound, on cyclic models."""
    rows = []
    for component in (BoundedStack, BankAccount):
        graph = TransactionFlowGraph(component.__tspec__)
        for bound in bounds:
            enumeration = enumerate_transactions(
                graph, edge_bound=bound, max_transactions=max_transactions
            )
            rows.append(
                EdgeBoundRow(
                    class_name=component.__name__,
                    edge_bound=bound,
                    transactions=len(enumeration),
                    truncated=enumeration.truncated,
                )
            )
    return tuple(rows)


# ---------------------------------------------------------------------------
# 4. Test-mode overhead
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverheadResult:
    plain_seconds: float
    production_seconds: float      # compile_component(test_mode=False)
    instrumented_off_seconds: float  # instrumented class, test mode off
    instrumented_on_seconds: float   # instrumented class, test mode on

    def format(self) -> str:
        base = self.plain_seconds or 1e-9
        return (
            "test-mode overhead (BoundedStack, relative to plain class):\n"
            f"  plain                 {self.plain_seconds:.4f}s (1.0x)\n"
            f"  production compile    {self.production_seconds:.4f}s "
            f"({self.production_seconds / base:.2f}x)\n"
            f"  instrumented, off     {self.instrumented_off_seconds:.4f}s "
            f"({self.instrumented_off_seconds / base:.2f}x)\n"
            f"  instrumented, on      {self.instrumented_on_seconds:.4f}s "
            f"({self.instrumented_on_seconds / base:.2f}x)"
        )


def _drive(stack_class: type, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        stack = stack_class(8)
        for value in range(8):
            stack.Push(value)
        while not stack.IsEmpty():
            stack.Pop()
    return time.perf_counter() - started


def test_mode_overhead(rounds: int = 2000) -> OverheadResult:
    """Measure the production-build promise of the BIT access control."""
    access.reset()
    production = compile_component(BoundedStack, test_mode=False)
    instrumented = compile_component(BoundedStack, test_mode=True,
                                     check_invariants=True)

    plain_seconds = _drive(BoundedStack, rounds)
    production_seconds = _drive(production, rounds)
    instrumented_off = _drive(instrumented, rounds)
    with access.test_mode():
        instrumented_on = _drive(instrumented, rounds)
    return OverheadResult(
        plain_seconds=plain_seconds,
        production_seconds=production_seconds,
        instrumented_off_seconds=instrumented_off,
        instrumented_on_seconds=instrumented_on,
    )
