"""Spans, counters and event emission — the run-telemetry core.

Binder's design-for-testability attributes (the paper cites them in
sec. 2) put *observability* of intermediate results first; this module
applies that principle to the reproduction's own pipeline.  A
:class:`Telemetry` session hands out :class:`Span` context managers
(monotonic-clock durations via ``time.perf_counter``), accumulates named
counters, and streams schema-versioned dict events (see
:mod:`repro.obs.schema`) to a sink — typically the JSONL file behind the
table CLIs' ``--trace-out`` flag.

Two hard guarantees the instrumented hot paths rely on:

* **Off means off.**  The default telemetry everywhere is
  :data:`NULL_TELEMETRY`, whose ``span``/``event``/``count`` are no-ops
  returning a shared singleton span — zero events, zero allocations
  beyond the call itself, no sink, no clock reads.  Instrumented code
  never branches on "is telemetry on"; it calls unconditionally and the
  null object absorbs it.
* **Observation only.**  Nothing in this module feeds back into verdict
  logic; the differential suite (``tests/obs/test_differential.py``)
  proves ``MutationRun.same_results`` holds with telemetry on vs off
  across seeds, worker counts and cache temperatures.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .schema import SCHEMA_VERSION

#: A sink receives each emitted event dict; ``close()`` is called on it at
#: session close when present (file-backed sinks flush there).
Sink = Callable[[Dict[str, Any]], None]

_SCALARS = (str, int, float, bool, type(None))


def _scalar(value: Any) -> Any:
    """Coerce an attribute value to a JSON scalar (schema requirement)."""
    if isinstance(value, _SCALARS):
        return value
    return str(value)


class Span:
    """One timed region, used as a context manager.

    Attributes may be attached at creation (``telemetry.span(name, k=v)``)
    or mid-flight (``span.set("killed", True)``) — the kill reason of a
    mutant is only known when the span is about to close.  The event is
    emitted at ``__exit__``; an exception escaping the span is recorded as
    an ``error`` attribute and re-raised untouched.
    """

    __slots__ = ("_telemetry", "name", "_attrs", "_started")

    def __init__(self, telemetry: "Telemetry", name: str,
                 attrs: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self._attrs = attrs
        self._started = 0.0

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self._attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._started = self._telemetry._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._telemetry._finish_span(self.name, self._started, self._attrs)
        return False


class Telemetry:
    """One observed run: spans, point events, counters, one sink.

    ``clock`` defaults to the monotonic ``time.perf_counter`` and is
    injectable for deterministic tests.  All timestamps in emitted events
    are offsets from the session origin (the clock value at construction),
    so traces are comparable across processes and machines.
    """

    #: Class-level so the null subclass can override without instance state.
    enabled = True

    def __init__(self, sink: Optional[Sink] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self._sink = sink
        self._clock = clock
        self._origin = clock()
        self._counters: Dict[str, int] = {}
        #: name -> [count, total seconds, max seconds]
        self._span_stats: Dict[str, List[float]] = {}
        self._events_emitted = 0
        self._closed = False
        # One session may be written from several threads at once (the
        # pipelined sweep runs scenarios on threads, and the pool's
        # dispatcher thread records dispatch/task events for all of them);
        # counter bumps, span-stat folds and sink writes are tiny critical
        # sections, so a single plain lock keeps the trace consistent.
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one region; emits a ``span`` event."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit one instantaneous ``point`` event."""
        self._emit({
            "v": SCHEMA_VERSION,
            "kind": "point",
            "name": name,
            "t": self._offset(),
            "attrs": {key: _scalar(value) for key, value in attrs.items()},
        })

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (no per-increment event; totals are
        emitted once as the closing ``counters`` event)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count_max(self, name: str, value: int) -> None:
        """Raise a named counter to ``value`` if it is below it — a
        high-water-mark counter (e.g. peak queue depth, peak scenarios
        in flight) rendered alongside the additive ones."""
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = value

    # -- inspection --------------------------------------------------------

    @property
    def events_emitted(self) -> int:
        return self._events_emitted

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: count, total/mean/max seconds."""
        return {
            name: {
                "count": int(stats[0]),
                "total_s": stats[1],
                "mean_s": stats[1] / stats[0] if stats[0] else 0.0,
                "max_s": stats[2],
            }
            for name, stats in self._span_stats.items()
        }

    def summary(self) -> str:
        """Human-readable rendering of the aggregates (see
        :mod:`repro.obs.summary`)."""
        from .summary import render_summary

        return render_summary(self)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Emit the final ``counters`` event and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._emit({
            "v": SCHEMA_VERSION,
            "kind": "counters",
            "name": "telemetry.close",
            "t": self._offset(),
            "counters": dict(self._counters),
        })
        closer = getattr(self._sink, "close", None)
        if callable(closer):
            closer()

    # -- internals ---------------------------------------------------------

    def _offset(self) -> float:
        return round(self._clock() - self._origin, 6)

    def _finish_span(self, name: str, started: float,
                     attrs: Dict[str, Any]) -> None:
        duration = self._clock() - started
        with self._lock:
            stats = self._span_stats.get(name)
            if stats is None:
                self._span_stats[name] = [1, duration, duration]
            else:
                stats[0] += 1
                stats[1] += duration
                if duration > stats[2]:
                    stats[2] = duration
        self._emit({
            "v": SCHEMA_VERSION,
            "kind": "span",
            "name": name,
            "t": round(started - self._origin, 6),
            "dur": round(duration, 6),
            "attrs": {key: _scalar(value) for key, value in attrs.items()},
        })

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events_emitted += 1
            if self._sink is not None:
                self._sink(event)


class _NullSpan:
    """The shared do-nothing span handed out when telemetry is off."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry(Telemetry):
    """Telemetry that observes nothing — the default on every hot path.

    Every recording method is a no-op and ``span`` returns one shared
    singleton, so disabled instrumentation costs a method call and
    nothing else: no event dicts, no clock reads, no sink traffic.  The
    zero-events contract is tested by patching :meth:`Telemetry._emit`
    to fail and running a full analysis through this object.
    """

    enabled = False

    def __init__(self):
        super().__init__(sink=None)

    def span(self, name: str, **attrs: Any) -> Span:  # type: ignore[override]
        return _NULL_SPAN  # type: ignore[return-value]

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def count_max(self, name: str, value: int) -> None:
        return None

    def close(self) -> None:
        return None


#: Process-wide null session; instrumented modules default to it.
NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Optional[Telemetry]) -> Telemetry:
    """The given session, or the shared null one — instrumented code
    stores the result and records unconditionally."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
