"""Event sinks: where telemetry events go.

A sink is any callable taking one event dict; these two cover the
shipped needs — a line-buffered JSONL file for ``--trace-out`` (one
schema-versioned JSON object per line, live-tailable) and an in-memory
list for tests and programmatic consumers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List


class MemorySink:
    """Collects events in order; ``events`` is the live list."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.closed = False

    def __call__(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


def write_events_jsonl(events, path) -> None:
    """Write already-collected events to ``path`` as JSONL.

    The batch analogue of :class:`JsonlSink` — same bytes per line
    (sorted keys, compact separators) — for consumers holding a list of
    events rather than a live session: the service client's ``events``
    dump, report post-processing, tests.
    """
    with open(str(path), "w", encoding="utf-8") as stream:
        for event in events:
            stream.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )


class JsonlSink:
    """Streams events to ``path``, one JSON object per line.

    The file is opened once (line-buffered, so every event reaches the OS
    as it happens — a crashed run leaves a readable trace) and truncated:
    a trace file describes exactly one run.  Keys are sorted so identical
    events serialize identically across runs.
    """

    def __init__(self, path) -> None:
        self._path = str(path)
        self._stream = open(self._path, "w", encoding="utf-8", buffering=1)

    @property
    def path(self) -> str:
        return self._path

    def __call__(self, event: Dict[str, Any]) -> None:
        self._stream.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()
