"""Human-readable rendering of one telemetry session's aggregates.

The ``--obs-summary`` flag prints this after a table run.  Every line is
prefixed ``obs`` (the same convention as the cache's ``cache…`` lines) so
CI row-diffs between instrumented and plain runs can strip it with one
``grep -v '^obs'``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping

if TYPE_CHECKING:
    from .telemetry import Telemetry


def _duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def aggregate_counters(counter_maps: Iterable[Mapping[str, int]]
                       ) -> Dict[str, int]:
    """Merge per-run counter maps by summation, name-sorted.

    Sweep-level aggregation: the scenario sweep runner collects one
    counter map per shard report and merges them here, so a sharded CI
    sweep's merged report carries fleet totals, not per-shard fragments.
    """
    totals: Dict[str, int] = {}
    for counters in counter_maps:
        for name, value in counters.items():
            totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))


def render_summary(telemetry: "Telemetry") -> str:
    """Span aggregates (count/total/mean/max) plus final counter values."""
    lines: List[str] = [
        f"obs telemetry summary: {telemetry.events_emitted} events emitted"
    ]
    stats = telemetry.span_stats()
    if stats:
        lines.append(f"obs {'span':<28} {'count':>7} {'total':>9} "
                     f"{'mean':>9} {'max':>9}")
        for name in sorted(stats, key=lambda n: -stats[n]["total_s"]):
            row = stats[name]
            lines.append(
                f"obs {name:<28} {row['count']:>7} "
                f"{_duration(row['total_s']):>9} "
                f"{_duration(row['mean_s']):>9} "
                f"{_duration(row['max_s']):>9}"
            )
    counters = telemetry.counters()
    if counters:
        lines.append(f"obs {'counter':<28} {'value':>7}")
        for name in sorted(counters):
            lines.append(f"obs {name:<28} {counters[name]:>7}")
    return "\n".join(lines)
