"""Trace validation CLI: ``python -m repro.obs TRACE.jsonl [...]``.

Validates every line of one or more JSONL trace files against the
telemetry event schema and prints per-kind counts.  Exit status 0 when
every file conforms, 1 on the first schema violation (naming file and
line), 2 on unreadable input — the gate the ``mutation-obs`` CI job runs
over recorded artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .schema import SchemaError, validate_jsonl


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate telemetry JSONL traces against the event schema.",
    )
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="JSONL trace file written by --trace-out")
    arguments = parser.parse_args(argv)
    for trace in arguments.traces:
        try:
            with open(trace, "r", encoding="utf-8") as stream:
                lines = stream.readlines()
        except OSError as error:
            print(f"{trace}: unreadable ({error})", file=sys.stderr)
            return 2
        try:
            count = validate_jsonl(lines)
        except SchemaError as error:
            print(f"{trace}: {error}", file=sys.stderr)
            return 1
        kinds: dict = {}
        for line in lines:
            if line.strip():
                kind = json.loads(line).get("kind")
                kinds[kind] = kinds.get(kind, 0) + 1
        breakdown = ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds))
        print(f"{trace}: ok — {count} events ({breakdown})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
