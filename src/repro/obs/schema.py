"""The telemetry event schema: versioned, validated, parseable downstream.

Every event the telemetry layer emits is a flat JSON object carrying the
schema version, so downstream tooling (the CI trace gate, ad-hoc ``jq``
pipelines, dashboards) can parse traces from any revision — or refuse
them loudly.  Three kinds exist:

``span``
    A timed region: ``name``, start offset ``t`` (seconds since the
    telemetry clock's origin, monotonic), duration ``dur`` (seconds),
    plus free-form scalar ``attrs``.
``point``
    An instantaneous occurrence (a worker respawn, a wall-timeout kill):
    ``name``, ``t``, ``attrs``.
``counters``
    The final counter snapshot, emitted once when the telemetry session
    closes: ``counters`` maps counter name to its integer total.

:func:`validate_event` is the single source of truth for well-formedness;
the emitter in :mod:`repro.obs.telemetry` shapes events to satisfy it and
the CI job re-validates every line of the recorded artifact through
``python -m repro.obs``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Tuple

#: Bumped whenever an event field is added, removed or retyped.
SCHEMA_VERSION = 1

#: The event kinds this schema version defines.
EVENT_KINDS: Tuple[str, ...] = ("span", "point", "counters")

#: Attribute values are JSON scalars only — nested payloads would make
#: line-oriented consumers (grep/jq one-liners) order-dependent.
_SCALAR_TYPES = (str, int, float, bool, type(None))


class SchemaError(ValueError):
    """An event that does not conform to the telemetry schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_attrs(attrs: Any) -> None:
    _require(isinstance(attrs, dict), f"attrs must be a dict, got {type(attrs).__name__}")
    for key, value in attrs.items():
        _require(isinstance(key, str) and key != "",
                 f"attr key must be a non-empty string, got {key!r}")
        _require(isinstance(value, _SCALAR_TYPES),
                 f"attr {key!r} must be a JSON scalar, got {type(value).__name__}")


def _check_seconds(event: Dict[str, Any], field: str) -> None:
    value = event.get(field)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{field!r} must be a number, got {value!r}")
    _require(value >= 0, f"{field!r} must be non-negative, got {value!r}")


def validate_event(event: Any) -> Dict[str, Any]:
    """Check one event against the schema; raise :class:`SchemaError` else.

    Returns the event unchanged so callers can chain
    (``validate_event(json.loads(line))``).
    """
    _require(isinstance(event, dict), f"event must be a dict, got {type(event).__name__}")
    _require(event.get("v") == SCHEMA_VERSION,
             f"unsupported schema version {event.get('v')!r} "
             f"(this validator understands v{SCHEMA_VERSION})")
    kind = event.get("kind")
    _require(kind in EVENT_KINDS, f"unknown event kind {kind!r}")
    name = event.get("name")
    _require(isinstance(name, str) and name != "",
             f"'name' must be a non-empty string, got {name!r}")
    _check_seconds(event, "t")
    if kind == "span":
        _check_seconds(event, "dur")
        _check_attrs(event.get("attrs", {}))
    elif kind == "point":
        _check_attrs(event.get("attrs", {}))
    else:  # counters
        counters = event.get("counters")
        _require(isinstance(counters, dict), "'counters' must be a dict")
        for key, value in counters.items():
            _require(isinstance(key, str) and key != "",
                     f"counter name must be a non-empty string, got {key!r}")
            _require(isinstance(value, int) and not isinstance(value, bool),
                     f"counter {key!r} must be an int, got {value!r}")
    return event


def validate_jsonl(lines: Iterable[str]) -> int:
    """Validate an iterable of JSONL lines; return the event count.

    Raises :class:`SchemaError` naming the first offending line (1-based);
    blank lines are ignored (a trailing newline is not an event).
    """
    count = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"line {number}: not valid JSON ({error})") from error
        try:
            validate_event(event)
        except SchemaError as error:
            raise SchemaError(f"line {number}: {error}") from error
        count += 1
    return count
