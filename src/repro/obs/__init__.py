"""Run telemetry for the mutation pipeline (spans, counters, JSONL traces).

The paper's design-for-testability argument names observability of
intermediate results as a core attribute of testable software; this
package gives the reproduction's own pipeline that property.  A
:class:`Telemetry` session times regions with ``span(...)`` context
managers, accumulates counters, and streams schema-versioned events
(:mod:`repro.obs.schema`) to a sink such as :class:`JsonlSink`.

Telemetry is **off by default** everywhere (:data:`NULL_TELEMETRY`
absorbs every call) and is purely observational: enabling it provably
changes no verdicts — see ``tests/obs/test_differential.py`` and DESIGN
§5.  Enable it on the table CLIs with ``--trace-out PATH`` /
``--obs-summary``; validate a recorded trace with
``python -m repro.obs trace.jsonl``.
"""

from .schema import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    SchemaError,
    validate_event,
    validate_jsonl,
)
from .sinks import JsonlSink, MemorySink, write_events_jsonl
from .summary import render_summary
from .telemetry import NULL_TELEMETRY, NullTelemetry, Span, Telemetry, coalesce

__all__ = [
    "EVENT_KINDS",
    "JsonlSink",
    "MemorySink",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Telemetry",
    "coalesce",
    "render_summary",
    "validate_event",
    "validate_jsonl",
    "write_events_jsonl",
]
