"""Test specification (t-spec): model, parser, writer, validator, builder."""

from .builder import SpecBuilder
from .introspect import derive_skeleton_spec, guess_domain
from .model import (
    AttributeSpec,
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)
from .parser import parse_tspec, tokenize
from .validate import find_problems, validate
from .writer import write_tspec

__all__ = [
    "AttributeSpec",
    "ClassSpec",
    "EdgeSpec",
    "MethodCategory",
    "MethodSpec",
    "NodeSpec",
    "ParameterSpec",
    "SpecBuilder",
    "derive_skeleton_spec",
    "find_problems",
    "guess_domain",
    "parse_tspec",
    "tokenize",
    "validate",
    "write_tspec",
]
