"""Structural validation of a t-spec.

The paper argues (sec. 3.2-(vii)) that embedding the specification lets the
tester detect "incompleteness, ambiguity and inconsistency" and remove them.
This module is that detector: it cross-checks every internal reference of a
:class:`ClassSpec` and reports *all* problems at once rather than stopping at
the first, so a spec author can fix a hand-written spec in one pass.
"""

from __future__ import annotations

from typing import List, Set

from ..core.errors import SpecValidationError
from .model import ClassSpec, MethodCategory


def find_problems(spec: ClassSpec) -> List[str]:
    """Return a list of human-readable problems; empty when the spec is sound."""
    problems: List[str] = []
    problems.extend(_check_unique_idents(spec))
    problems.extend(_check_methods(spec))
    problems.extend(_check_nodes(spec))
    problems.extend(_check_edges(spec))
    problems.extend(_check_model_shape(spec))
    return problems


def validate(spec: ClassSpec) -> ClassSpec:
    """Raise :class:`SpecValidationError` when the spec has problems.

    Returns the spec unchanged so calls can be chained:
    ``spec = validate(parse_tspec(text))``.
    """
    problems = find_problems(spec)
    if problems:
        raise SpecValidationError(problems)
    return spec


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_unique_idents(spec: ClassSpec) -> List[str]:
    problems: List[str] = []
    seen_methods: Set[str] = set()
    for method in spec.methods:
        if method.ident in seen_methods:
            problems.append(
                f"duplicate method ident {method.ident!r} "
                f"({method.category.value} method {method.name!r})"
            )
        seen_methods.add(method.ident)
    seen_nodes: Set[str] = set()
    for node in spec.nodes:
        if node.ident in seen_nodes:
            problems.append(f"duplicate node ident {node.ident!r}")
        seen_nodes.add(node.ident)
    seen_attributes: Set[str] = set()
    for attribute in spec.attributes:
        if attribute.name in seen_attributes:
            problems.append(f"duplicate attribute {attribute.name!r}")
        seen_attributes.add(attribute.name)
    return problems


def _check_methods(spec: ClassSpec) -> List[str]:
    problems: List[str] = []
    for method in spec.methods:
        duplicate_names = [
            p.name
            for index, p in enumerate(method.parameters)
            if p.name in {q.name for q in method.parameters[:index]}
        ]
        for name in duplicate_names:
            problems.append(
                f"method {method.ident} ({method.name}) repeats parameter {name!r}"
            )
    if not spec.is_abstract:
        if not spec.constructor_methods:
            problems.append("class declares no constructor method")
        if not spec.destructor_methods:
            problems.append("class declares no destructor method")
    return problems


def _check_nodes(spec: ClassSpec) -> List[str]:
    problems: List[str] = []
    method_idents = set(spec.method_idents)
    for node in spec.nodes:
        for method_ident in node.methods:
            if method_ident not in method_idents:
                problems.append(
                    f"node {node.ident} references unknown method {method_ident!r}"
                )
        if node.declared_out_degree is not None:
            actual = len(spec.outgoing_edges(node.ident))
            if actual != node.declared_out_degree:
                problems.append(
                    f"node {node.ident} declares out-degree "
                    f"{node.declared_out_degree} but has {actual} outgoing edges"
                )
        # A node must be homogeneous in reuse category for constructors and
        # destructors: mixing a constructor with a processing method in one
        # node makes the birth/death structure of the model ambiguous.
        categories = set()
        for method_ident in node.methods:
            if method_ident in method_idents:
                categories.add(spec.method_by_ident(method_ident).category)
        special = categories & {MethodCategory.CONSTRUCTOR, MethodCategory.DESTRUCTOR}
        if special and len(categories) > 1:
            problems.append(
                f"node {node.ident} mixes {', '.join(sorted(c.value for c in categories))} "
                "methods; birth/death nodes must be homogeneous"
            )
    return problems


def _check_edges(spec: ClassSpec) -> List[str]:
    problems: List[str] = []
    node_idents = {node.ident for node in spec.nodes}
    seen = set()
    for edge in spec.edges:
        if edge.source not in node_idents:
            problems.append(f"edge references unknown source node {edge.source!r}")
        if edge.target not in node_idents:
            problems.append(f"edge references unknown target node {edge.target!r}")
        key = (edge.source, edge.target)
        if key in seen:
            problems.append(f"duplicate edge {edge.source} -> {edge.target}")
        seen.add(key)
    return problems


def _check_model_shape(spec: ClassSpec) -> List[str]:
    """Birth-to-death shape: starts exist, ends exist, everything reachable."""
    problems: List[str] = []
    if not spec.nodes:
        if spec.is_abstract:
            return problems  # abstract classes may defer the model to subclasses
        problems.append("test model has no nodes")
        return problems

    starts = spec.start_nodes
    ends = spec.end_nodes
    if not starts:
        problems.append("test model has no starting (birth) node")
    if not ends:
        problems.append("test model has no ending (death) node")
    if not starts or not ends:
        return problems

    adjacency = spec.adjacency()

    # Forward reachability from births.
    reachable: Set[str] = set()
    frontier = [node.ident for node in starts]
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        frontier.extend(adjacency.get(current, ()))
    for node in spec.nodes:
        if node.ident not in reachable:
            problems.append(f"node {node.ident} is unreachable from any birth node")

    # Backward reachability to deaths: every reachable node must be able to
    # finish a transaction, otherwise the object can get stuck alive.
    reverse: dict = {node.ident: [] for node in spec.nodes}
    for source, targets in adjacency.items():
        for target in targets:
            reverse.setdefault(target, []).append(source)
    can_finish: Set[str] = set()
    frontier = [node.ident for node in ends]
    while frontier:
        current = frontier.pop()
        if current in can_finish:
            continue
        can_finish.add(current)
        frontier.extend(reverse.get(current, ()))
    for node in spec.nodes:
        if node.ident in reachable and node.ident not in can_finish:
            problems.append(
                f"node {node.ident} cannot reach any death node (stuck transaction)"
            )
    return problems
