"""Fluent construction API for t-specs.

Writing a :class:`ClassSpec` literal by hand is verbose (every method needs
an ident, every node lists idents, …).  The builder assigns idents
automatically (``m1``, ``m2``, …, ``n1``, ``n2``, …), lets nodes be declared
by method *name*, and validates the result on :meth:`SpecBuilder.build`.

Example::

    spec = (
        SpecBuilder("Counter")
        .constructor("Counter")
        .destructor("~Counter")
        .method("Increment", category="update")
        .method("Value", category="access", return_type="int")
        .node("birth", ["Counter"], start=True)
        .node("work", ["Increment", "Value"])
        .node("death", ["~Counter"])
        .edge("birth", "work")
        .edge("work", "work")
        .edge("work", "death")
        .edge("birth", "death")
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.domains import Domain
from ..core.errors import SpecError
from .model import (
    AttributeSpec,
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)
from .validate import validate

ParameterDecl = Union[ParameterSpec, Tuple[str, Domain]]


class SpecBuilder:
    """Accumulates spec records and produces a validated :class:`ClassSpec`."""

    def __init__(self, class_name: str, is_abstract: bool = False,
                 superclass: Optional[str] = None,
                 source_files: Sequence[str] = ()):
        self._name = class_name
        self._is_abstract = is_abstract
        self._superclass = superclass
        self._source_files = tuple(source_files)
        self._attributes: List[AttributeSpec] = []
        self._methods: List[MethodSpec] = []
        self._nodes: List[NodeSpec] = []
        self._edges: List[EdgeSpec] = []
        self._node_aliases: Dict[str, str] = {}

    @property
    def class_name(self) -> str:
        return self._name

    # -- interface description -------------------------------------------

    def attribute(self, name: str, domain: Domain) -> "SpecBuilder":
        self._attributes.append(AttributeSpec(name=name, domain=domain))
        return self

    def method(self, name: str, parameters: Sequence[ParameterDecl] = (),
               category: str = "process",
               return_type: Optional[str] = None,
               ident: Optional[str] = None) -> "SpecBuilder":
        """Declare a method; parameters are ``(name, domain)`` pairs."""
        resolved = tuple(self._resolve_parameter(p) for p in parameters)
        method_ident = ident or f"m{len(self._methods) + 1}"
        if any(m.ident == method_ident for m in self._methods):
            raise SpecError(f"method ident {method_ident!r} already used")
        self._methods.append(
            MethodSpec(
                ident=method_ident,
                name=name,
                category=MethodCategory.from_keyword(category),
                parameters=resolved,
                return_type=return_type,
            )
        )
        return self

    def constructor(self, name: str, parameters: Sequence[ParameterDecl] = (),
                    ident: Optional[str] = None) -> "SpecBuilder":
        return self.method(name, parameters, category="constructor", ident=ident)

    def destructor(self, name: str, ident: Optional[str] = None) -> "SpecBuilder":
        return self.method(name, (), category="destructor", ident=ident)

    @staticmethod
    def _resolve_parameter(declaration: ParameterDecl) -> ParameterSpec:
        if isinstance(declaration, ParameterSpec):
            return declaration
        name, domain = declaration
        return ParameterSpec(name=name, domain=domain)

    # -- test model description --------------------------------------------

    def node(self, alias: str, method_names: Sequence[str],
             start: bool = False) -> "SpecBuilder":
        """Declare a TFM node by listing the *names* of its methods.

        Each name resolves to every declared method ident with that name
        (so alternative constructors sharing a name group naturally).
        """
        if alias in self._node_aliases:
            raise SpecError(f"node alias {alias!r} already used")
        idents: List[str] = []
        for method_name in method_names:
            matches = [m.ident for m in self._methods if m.name == method_name]
            if not matches:
                raise SpecError(
                    f"node {alias!r} references undeclared method {method_name!r}"
                )
            idents.extend(matches)
        node_ident = f"n{len(self._nodes) + 1}"
        self._node_aliases[alias] = node_ident
        self._nodes.append(
            NodeSpec(ident=node_ident, methods=tuple(idents), is_start=start)
        )
        return self

    def edge(self, source_alias: str, target_alias: str) -> "SpecBuilder":
        try:
            source = self._node_aliases[source_alias]
        except KeyError:
            raise SpecError(f"unknown node alias {source_alias!r}") from None
        try:
            target = self._node_aliases[target_alias]
        except KeyError:
            raise SpecError(f"unknown node alias {target_alias!r}") from None
        self._edges.append(EdgeSpec(source=source, target=target))
        return self

    def chain(self, *aliases: str) -> "SpecBuilder":
        """Add edges along a path of node aliases: ``chain(a, b, c)`` ≡ a→b, b→c."""
        for source_alias, target_alias in zip(aliases, aliases[1:]):
            self.edge(source_alias, target_alias)
        return self

    # -- finalization ------------------------------------------------------

    def node_ident(self, alias: str) -> str:
        """The generated ident for a node alias (useful in tests)."""
        return self._node_aliases[alias]

    def build(self, check: bool = True) -> ClassSpec:
        spec = ClassSpec(
            name=self._name,
            attributes=tuple(self._attributes),
            methods=tuple(self._methods),
            nodes=tuple(self._nodes),
            edges=tuple(self._edges),
            is_abstract=self._is_abstract,
            superclass=self._superclass,
            source_files=self._source_files,
        )
        if check:
            return validate(spec)
        return spec
