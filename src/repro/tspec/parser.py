"""Parser for the textual t-spec format (Figure 3 of the paper).

The format is a flat sequence of records, one per construct, written as
function-call-like tuples with ``//`` comments::

    Class ('Product', No, <empty>, <empty>)
    Attribute ('qty', range, 1, 99999)
    Method (m1, 'Product', <empty>, constructor, 0)
    Parameter (m5, 'n', string, 1, 30)
    Parameter (m6, 'q', set, [1, 2, 3])
    Node (n1, Yes, 1, [m1, m2])
    Edge (n1, n4)

Record kinds:

``Class(name, abstract?, superclass|<empty>, files|<empty>)``
    Exactly one per spec, first record.
``Attribute(name, domain…)``
    Domain forms: ``range, low, high`` — ``float_range, low, high`` —
    ``set, [v, …]`` — ``string[, min, max]`` — ``bool`` —
    ``object, 'Class'`` — ``pointer, 'Class'``.
``Method(ident, name, return|<empty>, category, nparams)``
``Parameter(method_ident, name, domain…)``
    Parameters attach to their method in declaration order.
``Node(ident, start?, out_degree, [method_idents…])``
``Edge(source_node, target_node)``

The parser produces a :class:`~repro.tspec.model.ClassSpec`; structural
consistency beyond what parsing requires (arity matches, known idents) is
the job of :mod:`repro.tspec.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.domains import (
    BoolDomain,
    Domain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from ..core.errors import SpecParseError
from .model import (
    AttributeSpec,
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_PUNCTUATION = {"(": "LPAREN", ")": "RPAREN", "[": "LBRACKET", "]": "RBRACKET", ",": "COMMA"}


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, STRING, NUMBER, EMPTY, or a punctuation kind
    value: Any
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Split t-spec source into tokens, dropping ``//`` comments."""
    tokens: List[Token] = []
    line_number = 0
    for raw_line in text.splitlines():
        line_number += 1
        line = _strip_comment(raw_line)
        index = 0
        length = len(line)
        while index < length:
            char = line[index]
            column = index + 1
            if char.isspace():
                index += 1
            elif char in _PUNCTUATION:
                tokens.append(Token(_PUNCTUATION[char], char, line_number, column))
                index += 1
            elif char in "'\"":
                index, literal = _read_string(line, index, line_number)
                tokens.append(Token("STRING", literal, line_number, column))
            elif char == "<":
                if line.startswith("<empty>", index):
                    tokens.append(Token("EMPTY", None, line_number, column))
                    index += len("<empty>")
                else:
                    raise SpecParseError(f"unexpected character {char!r}", line_number, column)
            elif char.isdigit() or (char in "+-" and index + 1 < length and line[index + 1].isdigit()):
                index, number = _read_number(line, index)
                tokens.append(Token("NUMBER", number, line_number, column))
            elif char.isalpha() or char == "_":
                start = index
                while index < length and (line[index].isalnum() or line[index] == "_"):
                    index += 1
                tokens.append(Token("IDENT", line[start:index], line_number, column))
            else:
                raise SpecParseError(f"unexpected character {char!r}", line_number, column)
    return tokens


def _strip_comment(line: str) -> str:
    """Remove a ``//`` comment, respecting quoted strings."""
    in_quote: Optional[str] = None
    index = 0
    while index < len(line):
        char = line[index]
        if in_quote:
            if char == in_quote:
                in_quote = None
        elif char in "'\"":
            in_quote = char
        elif char == "/" and line.startswith("//", index):
            return line[:index]
        index += 1
    return line


def _read_string(line: str, index: int, line_number: int) -> Tuple[int, str]:
    quote = line[index]
    index += 1
    start = index
    while index < len(line) and line[index] != quote:
        index += 1
    if index >= len(line):
        raise SpecParseError("unterminated string literal", line_number, start)
    return index + 1, line[start:index]


def _read_number(line: str, index: int) -> Tuple[int, Any]:
    start = index
    if line[index] in "+-":
        index += 1
    while index < len(line) and (line[index].isdigit() or line[index] == "."):
        index += 1
    text = line[start:index]
    if "." in text:
        return index, float(text)
    return index, int(text)


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------


class _TokenStream:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)

    def peek(self) -> Token:
        if self.exhausted:
            raise SpecParseError("unexpected end of specification")
        return self._tokens[self._position]

    def next(self) -> Token:
        token = self.peek()
        self._position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise SpecParseError(
                f"expected {kind}, found {token.kind} ({token.value!r})",
                token.line,
                token.column,
            )
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.expect("IDENT")
        if token.value.lower() != word.lower():
            raise SpecParseError(
                f"expected keyword {word!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return token


class _PendingMethod:
    """Mutable accumulator for a method whose parameters arrive later."""

    def __init__(self, ident: str, name: str, return_type: Optional[str],
                 category: MethodCategory, declared_arity: int, line: int):
        self.ident = ident
        self.name = name
        self.return_type = return_type
        self.category = category
        self.declared_arity = declared_arity
        self.line = line
        self.parameters: List[ParameterSpec] = []

    def freeze(self) -> MethodSpec:
        return MethodSpec(
            ident=self.ident,
            name=self.name,
            category=self.category,
            parameters=tuple(self.parameters),
            return_type=self.return_type,
        )


def parse_tspec(text: str) -> ClassSpec:
    """Parse t-spec source text into a :class:`ClassSpec`."""
    stream = _TokenStream(tokenize(text))

    header: Optional[Tuple[str, bool, Optional[str], Tuple[str, ...]]] = None
    attributes: List[AttributeSpec] = []
    methods: List[_PendingMethod] = []
    nodes: List[NodeSpec] = []
    edges: List[EdgeSpec] = []

    while not stream.exhausted:
        keyword_token = stream.expect("IDENT")
        keyword = keyword_token.value.lower()
        if keyword == "class":
            if header is not None:
                raise SpecParseError(
                    "duplicate Class record", keyword_token.line, keyword_token.column
                )
            header = _parse_class_record(stream)
        elif keyword == "attribute":
            attributes.append(_parse_attribute_record(stream))
        elif keyword == "method":
            methods.append(_parse_method_record(stream))
        elif keyword == "parameter":
            _parse_parameter_record(stream, methods)
        elif keyword == "node":
            nodes.append(_parse_node_record(stream))
        elif keyword == "edge":
            edges.append(_parse_edge_record(stream))
        else:
            raise SpecParseError(
                f"unknown record kind {keyword_token.value!r}",
                keyword_token.line,
                keyword_token.column,
            )

    if header is None:
        raise SpecParseError("specification has no Class record")

    name, is_abstract, superclass, source_files = header
    return ClassSpec(
        name=name,
        attributes=tuple(attributes),
        methods=tuple(m.freeze() for m in methods),
        nodes=tuple(nodes),
        edges=tuple(edges),
        is_abstract=is_abstract,
        superclass=superclass,
        source_files=source_files,
    )


def _parse_class_record(stream: _TokenStream):
    stream.expect("LPAREN")
    name = stream.expect("STRING").value
    stream.expect("COMMA")
    is_abstract = _parse_yes_no(stream)
    stream.expect("COMMA")
    superclass = _parse_optional_string(stream)
    stream.expect("COMMA")
    source_files = _parse_file_list(stream)
    stream.expect("RPAREN")
    return name, is_abstract, superclass, source_files


def _parse_attribute_record(stream: _TokenStream) -> AttributeSpec:
    stream.expect("LPAREN")
    name = stream.expect("STRING").value
    stream.expect("COMMA")
    domain = _parse_domain(stream)
    stream.expect("RPAREN")
    return AttributeSpec(name=name, domain=domain)


def _parse_method_record(stream: _TokenStream) -> _PendingMethod:
    stream.expect("LPAREN")
    ident_token = stream.expect("IDENT")
    stream.expect("COMMA")
    name = stream.expect("STRING").value
    stream.expect("COMMA")
    return_type = _parse_optional_return(stream)
    stream.expect("COMMA")
    category_token = stream.expect("IDENT")
    category = MethodCategory.from_keyword(category_token.value)
    stream.expect("COMMA")
    declared_arity = stream.expect("NUMBER").value
    stream.expect("RPAREN")
    return _PendingMethod(
        ident=ident_token.value,
        name=name,
        return_type=return_type,
        category=category,
        declared_arity=int(declared_arity),
        line=ident_token.line,
    )


def _parse_parameter_record(stream: _TokenStream, methods: List[_PendingMethod]) -> None:
    stream.expect("LPAREN")
    method_token = stream.expect("IDENT")
    stream.expect("COMMA")
    name = stream.expect("STRING").value
    stream.expect("COMMA")
    domain = _parse_domain(stream)
    stream.expect("RPAREN")

    for method in methods:
        if method.ident == method_token.value:
            method.parameters.append(ParameterSpec(name=name, domain=domain))
            return
    raise SpecParseError(
        f"Parameter record references unknown method {method_token.value!r}",
        method_token.line,
        method_token.column,
    )


def _parse_node_record(stream: _TokenStream) -> NodeSpec:
    stream.expect("LPAREN")
    ident = stream.expect("IDENT").value
    stream.expect("COMMA")
    is_start = _parse_yes_no(stream)
    stream.expect("COMMA")
    out_degree = int(stream.expect("NUMBER").value)
    stream.expect("COMMA")
    method_idents = _parse_ident_list(stream)
    stream.expect("RPAREN")
    return NodeSpec(
        ident=ident,
        methods=method_idents,
        is_start=is_start,
        declared_out_degree=out_degree,
    )


def _parse_edge_record(stream: _TokenStream) -> EdgeSpec:
    stream.expect("LPAREN")
    source = stream.expect("IDENT").value
    stream.expect("COMMA")
    target = stream.expect("IDENT").value
    stream.expect("RPAREN")
    return EdgeSpec(source=source, target=target)


# -- field helpers ----------------------------------------------------------


def _parse_yes_no(stream: _TokenStream) -> bool:
    token = stream.expect("IDENT")
    word = token.value.lower()
    if word in ("yes", "true"):
        return True
    if word in ("no", "false"):
        return False
    raise SpecParseError(
        f"expected Yes/No, found {token.value!r}", token.line, token.column
    )


def _parse_optional_string(stream: _TokenStream) -> Optional[str]:
    token = stream.next()
    if token.kind == "EMPTY":
        return None
    if token.kind == "STRING":
        return token.value
    raise SpecParseError(
        f"expected string or <empty>, found {token.kind}", token.line, token.column
    )


def _parse_optional_return(stream: _TokenStream) -> Optional[str]:
    token = stream.next()
    if token.kind == "EMPTY":
        return None
    if token.kind in ("STRING", "IDENT"):
        return token.value
    raise SpecParseError(
        f"expected return type or <empty>, found {token.kind}", token.line, token.column
    )


def _parse_file_list(stream: _TokenStream) -> Tuple[str, ...]:
    token = stream.peek()
    if token.kind == "EMPTY":
        stream.next()
        return ()
    if token.kind == "STRING":
        return (stream.next().value,)
    if token.kind == "LBRACKET":
        stream.next()
        files: List[str] = []
        while stream.peek().kind != "RBRACKET":
            files.append(stream.expect("STRING").value)
            if stream.peek().kind == "COMMA":
                stream.next()
        stream.expect("RBRACKET")
        return tuple(files)
    raise SpecParseError(
        f"expected file list, found {token.kind}", token.line, token.column
    )


def _parse_ident_list(stream: _TokenStream) -> Tuple[str, ...]:
    stream.expect("LBRACKET")
    idents: List[str] = []
    while stream.peek().kind != "RBRACKET":
        idents.append(stream.expect("IDENT").value)
        if stream.peek().kind == "COMMA":
            stream.next()
    stream.expect("RBRACKET")
    return tuple(idents)


def _parse_literal_list(stream: _TokenStream) -> Tuple[Any, ...]:
    stream.expect("LBRACKET")
    values: List[Any] = []
    while stream.peek().kind != "RBRACKET":
        token = stream.next()
        if token.kind in ("STRING", "NUMBER"):
            values.append(token.value)
        elif token.kind == "IDENT" and token.value.lower() in ("true", "false"):
            values.append(token.value.lower() == "true")
        else:
            raise SpecParseError(
                f"expected literal in set, found {token.kind}", token.line, token.column
            )
        if stream.peek().kind == "COMMA":
            stream.next()
    stream.expect("RBRACKET")
    return tuple(values)


def _parse_domain(stream: _TokenStream) -> Domain:
    token = stream.expect("IDENT")
    kind = token.value.lower()
    if kind == "range":
        stream.expect("COMMA")
        low = stream.expect("NUMBER").value
        stream.expect("COMMA")
        high = stream.expect("NUMBER").value
        return RangeDomain(int(low), int(high))
    if kind == "float_range":
        stream.expect("COMMA")
        low = stream.expect("NUMBER").value
        stream.expect("COMMA")
        high = stream.expect("NUMBER").value
        return FloatRangeDomain(float(low), float(high))
    if kind == "set":
        stream.expect("COMMA")
        return SetDomain(_parse_literal_list(stream))
    if kind == "string":
        if stream.peek().kind == "COMMA":
            stream.next()
            min_length = int(stream.expect("NUMBER").value)
            stream.expect("COMMA")
            max_length = int(stream.expect("NUMBER").value)
            return StringDomain(min_length, max_length)
        return StringDomain()
    if kind == "bool":
        return BoolDomain()
    if kind == "object":
        stream.expect("COMMA")
        class_name = stream.expect("STRING").value
        return ObjectDomain(class_name)
    if kind == "pointer":
        stream.expect("COMMA")
        class_name = stream.expect("STRING").value
        return PointerDomain(ObjectDomain(class_name))
    raise SpecParseError(
        f"unknown domain kind {token.value!r}", token.line, token.column
    )
