"""Derive a skeleton t-spec from a live Python class.

The paper's producer writes the t-spec by hand from the design documents
(use cases → TFM).  In Python we can bootstrap that work: inspect the class,
enumerate its public methods, guess parameter domains from type annotations
and defaults, and propose a conservative "star" test model (birth → any
method, in any order, → death).  The producer then refines the node/edge
structure to the real allowable sequences.

The skeleton is deliberately *permissive*: it never forbids a sequence the
class allows, so refining it can only remove paths, never miss them.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.domains import (
    BoolDomain,
    Domain,
    FloatRangeDomain,
    ObjectDomain,
    RangeDomain,
    StringDomain,
)
from .model import (
    AttributeSpec,
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)

#: Default domains guessed from annotations.  Ranges are modest so random
#: sampling produces workable values out of the box.
_DEFAULT_INT = RangeDomain(-100, 100)
_DEFAULT_FLOAT = FloatRangeDomain(-100.0, 100.0)
_DEFAULT_STRING = StringDomain(0, 12)


def guess_domain(annotation: Any, default: Any = inspect.Parameter.empty) -> Domain:
    """Map a type annotation (or a default value's type) to a domain."""
    if annotation is inspect.Parameter.empty:
        annotation = None  # unannotated: fall through to the default value
    candidates: List[Tuple[Any, Domain]] = [
        (bool, BoolDomain()),
        (int, _DEFAULT_INT),
        (float, _DEFAULT_FLOAT),
        (str, _DEFAULT_STRING),
    ]
    for type_candidate, domain in candidates:
        if annotation is type_candidate:
            return domain
    if isinstance(annotation, str):
        for type_candidate, domain in candidates:
            if annotation == type_candidate.__name__:
                return domain
        return ObjectDomain(annotation)
    if inspect.isclass(annotation):
        return ObjectDomain(annotation.__name__)
    if default is not inspect.Parameter.empty and default is not None:
        for type_candidate, domain in candidates:
            if type(default) is type_candidate:
                return domain
    # No usable information: treat as a structured object the tester binds.
    return ObjectDomain("object")


def _public_methods(target: type) -> List[Tuple[str, Callable]]:
    methods: List[Tuple[str, Callable]] = []
    for name, member in inspect.getmembers(target, predicate=inspect.isfunction):
        if name.startswith("_") and name != "__init__":
            continue
        # Skip built-in-test machinery if the class is already instrumented.
        if name in ("invariant_test", "reporter", "class_invariant"):
            continue
        methods.append((name, member))
    return methods


def _parameters_for(function: Callable) -> Tuple[ParameterSpec, ...]:
    signature = inspect.signature(function)
    parameters: List[ParameterSpec] = []
    for name, parameter in signature.parameters.items():
        if name == "self":
            continue
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        domain = guess_domain(parameter.annotation, parameter.default)
        parameters.append(ParameterSpec(name=name, domain=domain))
    return tuple(parameters)


def _categorize(name: str) -> MethodCategory:
    lowered = name.lower()
    if lowered in ("__init__",):
        return MethodCategory.CONSTRUCTOR
    if any(lowered.startswith(prefix) for prefix in ("set", "update", "add", "insert",
                                                     "push", "append", "write")):
        return MethodCategory.UPDATE
    if any(lowered.startswith(prefix) for prefix in ("get", "show", "find", "is",
                                                     "has", "peek", "read", "count")):
        return MethodCategory.ACCESS
    return MethodCategory.PROCESS


def derive_skeleton_spec(target: type,
                         attribute_domains: Optional[Sequence[Tuple[str, Domain]]] = None,
                         ) -> ClassSpec:
    """Build a permissive skeleton :class:`ClassSpec` for ``target``.

    The model has three nodes: *birth* (``__init__``), *work* (every other
    public method as alternatives), *death* (a synthetic destructor), wired
    birth → work → death with a work self-loop and a birth → death shortcut.
    """
    methods: List[MethodSpec] = []
    work_idents: List[str] = []

    construct = getattr(target, "__init__", None)
    constructor_params: Tuple[ParameterSpec, ...] = ()
    if construct is not None and not isinstance(construct, type(object.__init__)):
        constructor_params = _parameters_for(construct)
    methods.append(
        MethodSpec(
            ident="m1",
            name=target.__name__,
            category=MethodCategory.CONSTRUCTOR,
            parameters=constructor_params,
        )
    )

    next_index = 2
    for name, member in _public_methods(target):
        if name == "__init__":
            continue
        ident = f"m{next_index}"
        next_index += 1
        methods.append(
            MethodSpec(
                ident=ident,
                name=name,
                category=_categorize(name),
                parameters=_parameters_for(member),
            )
        )
        work_idents.append(ident)

    destructor_ident = f"m{next_index}"
    methods.append(
        MethodSpec(
            ident=destructor_ident,
            name=f"~{target.__name__}",
            category=MethodCategory.DESTRUCTOR,
        )
    )

    nodes = [NodeSpec(ident="n1", methods=("m1",), is_start=True)]
    edges: List[EdgeSpec] = []
    if work_idents:
        nodes.append(NodeSpec(ident="n2", methods=tuple(work_idents)))
        nodes.append(NodeSpec(ident="n3", methods=(destructor_ident,)))
        edges.extend(
            [
                EdgeSpec("n1", "n2"),
                EdgeSpec("n2", "n2"),
                EdgeSpec("n2", "n3"),
                EdgeSpec("n1", "n3"),
            ]
        )
    else:
        nodes.append(NodeSpec(ident="n2", methods=(destructor_ident,)))
        edges.append(EdgeSpec("n1", "n2"))

    attributes = tuple(
        AttributeSpec(name=name, domain=domain)
        for name, domain in (attribute_domains or ())
    )

    superclass: Optional[str] = None
    bases = [base for base in target.__bases__ if base is not object]
    if bases:
        superclass = bases[0].__name__

    return ClassSpec(
        name=target.__name__,
        attributes=attributes,
        methods=tuple(methods),
        nodes=tuple(nodes),
        edges=tuple(edges),
        is_abstract=inspect.isabstract(target),
        superclass=superclass,
        source_files=(getattr(target, "__module__", "") or "",),
    )
