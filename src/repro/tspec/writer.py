"""Serializer from :class:`ClassSpec` back to the Figure-3 textual format.

``parse_tspec(write_tspec(spec)) == spec`` holds for any spec whose object
domains are *unbound* (factories are runtime callables and cannot be written
to text; the writer emits the class name only, which is what the paper's
format carries).
"""

from __future__ import annotations

from typing import Any, List

from ..core.domains import (
    BoolDomain,
    Domain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from ..core.errors import SpecError
from .model import ClassSpec, MethodSpec, NodeSpec


def write_tspec(spec: ClassSpec) -> str:
    """Render the spec as t-spec source text."""
    lines: List[str] = []
    lines.append(_class_record(spec))
    lines.append("")
    for attribute in spec.attributes:
        lines.append(f"Attribute ('{attribute.name}', {_domain_fields(attribute.domain)})")
    if spec.attributes:
        lines.append("")
    for method in spec.methods:
        lines.append(_method_record(method))
        for parameter in method.parameters:
            lines.append(
                f"Parameter ({method.ident}, '{parameter.name}', "
                f"{_domain_fields(parameter.domain)})"
            )
    if spec.methods:
        lines.append("")
    for node in spec.nodes:
        lines.append(_node_record(spec, node))
    if spec.nodes:
        lines.append("")
    for edge in spec.edges:
        lines.append(f"Edge ({edge.source}, {edge.target})")
    return "\n".join(lines) + "\n"


def _class_record(spec: ClassSpec) -> str:
    abstract = "Yes" if spec.is_abstract else "No"
    superclass = f"'{spec.superclass}'" if spec.superclass else "<empty>"
    if spec.source_files:
        files = "[" + ", ".join(f"'{name}'" for name in spec.source_files) + "]"
    else:
        files = "<empty>"
    return f"Class ('{spec.name}', {abstract}, {superclass}, {files})"


def _method_record(method: MethodSpec) -> str:
    return_type = f"'{method.return_type}'" if method.return_type else "<empty>"
    return (
        f"Method ({method.ident}, '{method.name}', {return_type}, "
        f"{method.category.value}, {method.arity})"
    )


def _node_record(spec: ClassSpec, node: NodeSpec) -> str:
    start = "Yes" if node.is_start else "No"
    out_degree = node.declared_out_degree
    if out_degree is None:
        out_degree = len(spec.outgoing_edges(node.ident))
    methods = "[" + ", ".join(node.methods) + "]"
    return f"Node ({node.ident}, {start}, {out_degree}, {methods})"


def _domain_fields(domain: Domain) -> str:
    if isinstance(domain, RangeDomain):
        return f"range, {domain.low}, {domain.high}"
    if isinstance(domain, FloatRangeDomain):
        return f"float_range, {_number(domain.low)}, {_number(domain.high)}"
    if isinstance(domain, SetDomain):
        members = ", ".join(_literal(value) for value in domain.members)
        return f"set, [{members}]"
    if isinstance(domain, StringDomain):
        return f"string, {domain.min_length}, {domain.max_length}"
    if isinstance(domain, BoolDomain):
        return "bool"
    if isinstance(domain, PointerDomain):
        return f"pointer, '{domain.target.class_name}'"
    if isinstance(domain, ObjectDomain):
        return f"object, '{domain.class_name}'"
    raise SpecError(f"cannot serialize domain of kind {domain.kind!r}")


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    return _number(value)


def _number(value: Any) -> str:
    if isinstance(value, float) and value == int(value):
        return f"{value:.1f}"
    return repr(value)
