"""Data model for the test specification (t-spec).

The t-spec is the specification a self-testable component embeds (paper
sec. 3.2, Figure 3).  It has two halves:

* an **interface description** — the class header (name, abstractness,
  superclass, source files), its attributes with value domains, and its
  methods with signatures whose parameters also carry value domains;
* a **test model description** — the nodes and edges of the Transaction Flow
  Model (TFM).  A node groups the public methods that constitute one task
  (e.g. the alternative constructors); an edge says task A may be immediately
  followed by task B.

All records are frozen dataclasses: a t-spec is an immutable artefact that is
parsed once and shared by the driver generator, the validator, and the test
history machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..core.domains import Domain
from ..core.errors import SpecValidationError


class MethodCategory(enum.Enum):
    """Method category *relative to test reuse* (Figure 3).

    Constructors and destructors are excluded from test-case identity when
    deciding reuse for a subclass (sec. 3.4.2): a subclass transaction whose
    only differences from the parent's are its constructor/destructor still
    reuses the parent's test case.  The remaining categories mirror the
    groupings of Figure 1 (update methods, access methods, processing
    methods such as insert/delete).
    """

    CONSTRUCTOR = "constructor"
    DESTRUCTOR = "destructor"
    UPDATE = "update"
    ACCESS = "access"
    PROCESS = "process"

    @classmethod
    def from_keyword(cls, keyword: str) -> "MethodCategory":
        try:
            return cls(keyword.lower())
        except ValueError:
            valid = ", ".join(c.value for c in cls)
            raise SpecValidationError(
                [f"unknown method category {keyword!r} (valid: {valid})"]
            ) from None


@dataclass(frozen=True)
class AttributeSpec:
    """One class attribute and its value domain.

    Attributes are not part of the public interface (the paper assumes they
    are reachable only through methods), but their domains feed the class
    invariant and the reporter.
    """

    name: str
    domain: Domain

    def describe(self) -> str:
        return f"{self.name}: {self.domain.describe()}"


@dataclass(frozen=True)
class ParameterSpec:
    """One formal parameter of a method, with its value domain."""

    name: str
    domain: Domain

    @property
    def is_structured(self) -> bool:
        """True when the generator cannot sample this parameter (sec. 3.4.1)."""
        return self.domain.is_structured

    def describe(self) -> str:
        return f"{self.name}: {self.domain.describe()}"


@dataclass(frozen=True)
class MethodSpec:
    """One public method: identity, signature, and reuse category.

    ``ident`` is the short t-spec identifier (``m1``, ``m2``, …) used by node
    records; ``name`` is the runtime method name.  Several method records may
    share a ``name`` only when they are constructor overloads (C++ heritage);
    in Python, overloads are modelled as distinct idents whose parameter
    lists select the constructor arguments actually passed.
    """

    ident: str
    name: str
    category: MethodCategory
    parameters: Tuple[ParameterSpec, ...] = ()
    return_type: Optional[str] = None

    @property
    def arity(self) -> int:
        return len(self.parameters)

    @property
    def is_constructor(self) -> bool:
        return self.category is MethodCategory.CONSTRUCTOR

    @property
    def is_destructor(self) -> bool:
        return self.category is MethodCategory.DESTRUCTOR

    @property
    def has_structured_parameters(self) -> bool:
        return any(p.is_structured for p in self.parameters)

    def signature(self) -> str:
        """Readable signature for logs: ``name(p1: dom, p2: dom) -> ret``."""
        params = ", ".join(p.describe() for p in self.parameters)
        suffix = f" -> {self.return_type}" if self.return_type else ""
        return f"{self.name}({params}){suffix}"


@dataclass(frozen=True)
class NodeSpec:
    """One TFM node: a task realised by one of several alternative methods.

    Figure 3's node record carries an explicit "starting node?" flag and the
    declared out-degree; the out-degree is redundant with the edge list and
    is kept only so the validator can cross-check it (a mismatch usually
    means a hand-edited spec lost an edge).
    """

    ident: str
    methods: Tuple[str, ...]  # method idents constituting the node
    is_start: bool = False
    declared_out_degree: Optional[int] = None

    def __post_init__(self):
        if not self.methods:
            raise SpecValidationError([f"node {self.ident} lists no methods"])


@dataclass(frozen=True)
class EdgeSpec:
    """A directed TFM edge: task ``source`` may be followed by ``target``."""

    source: str
    target: str


@dataclass(frozen=True)
class ClassSpec:
    """The complete t-spec of one component class.

    The header mirrors Figure 3's ``Class`` record: name, abstract flag,
    superclass name (``None`` when the class is a root), and the source files
    needed to build the class (free-form strings; informational in Python).
    """

    name: str
    attributes: Tuple[AttributeSpec, ...] = ()
    methods: Tuple[MethodSpec, ...] = ()
    nodes: Tuple[NodeSpec, ...] = ()
    edges: Tuple[EdgeSpec, ...] = ()
    is_abstract: bool = False
    superclass: Optional[str] = None
    source_files: Tuple[str, ...] = ()

    # -- lookups ----------------------------------------------------------

    def method_by_ident(self, ident: str) -> MethodSpec:
        for method in self.methods:
            if method.ident == ident:
                return method
        raise KeyError(f"no method with ident {ident!r} in class {self.name}")

    def methods_by_name(self, name: str) -> Tuple[MethodSpec, ...]:
        return tuple(m for m in self.methods if m.name == name)

    def node_by_ident(self, ident: str) -> NodeSpec:
        for node in self.nodes:
            if node.ident == ident:
                return node
        raise KeyError(f"no node with ident {ident!r} in class {self.name}")

    def attribute_by_name(self, name: str) -> AttributeSpec:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise KeyError(f"no attribute named {name!r} in class {self.name}")

    # -- derived views ----------------------------------------------------

    @property
    def method_idents(self) -> Tuple[str, ...]:
        return tuple(m.ident for m in self.methods)

    @property
    def constructor_methods(self) -> Tuple[MethodSpec, ...]:
        return tuple(m for m in self.methods if m.is_constructor)

    @property
    def destructor_methods(self) -> Tuple[MethodSpec, ...]:
        return tuple(m for m in self.methods if m.is_destructor)

    @property
    def start_nodes(self) -> Tuple[NodeSpec, ...]:
        """Birth nodes: explicitly flagged, else nodes of constructors."""
        flagged = tuple(n for n in self.nodes if n.is_start)
        if flagged:
            return flagged
        return tuple(
            n
            for n in self.nodes
            if any(self._safe_method(mid) and self._safe_method(mid).is_constructor
                   for mid in n.methods)
        )

    @property
    def end_nodes(self) -> Tuple[NodeSpec, ...]:
        """Death nodes: nodes containing a destructor method."""
        return tuple(
            n
            for n in self.nodes
            if any(self._safe_method(mid) and self._safe_method(mid).is_destructor
                   for mid in n.methods)
        )

    def _safe_method(self, ident: str) -> Optional[MethodSpec]:
        try:
            return self.method_by_ident(ident)
        except KeyError:
            return None

    def outgoing_edges(self, node_ident: str) -> Tuple[EdgeSpec, ...]:
        return tuple(e for e in self.edges if e.source == node_ident)

    def incoming_edges(self, node_ident: str) -> Tuple[EdgeSpec, ...]:
        return tuple(e for e in self.edges if e.target == node_ident)

    def adjacency(self) -> Dict[str, Tuple[str, ...]]:
        """Node ident → tuple of successor node idents."""
        out: Dict[str, list] = {n.ident: [] for n in self.nodes}
        for edge in self.edges:
            out.setdefault(edge.source, []).append(edge.target)
        return {k: tuple(v) for k, v in out.items()}

    def iter_parameter_specs(self) -> Iterator[Tuple[MethodSpec, ParameterSpec]]:
        for method in self.methods:
            for parameter in method.parameters:
                yield method, parameter

    def normalized(self) -> "ClassSpec":
        """Canonical form: every node's declared out-degree filled in.

        The textual format always carries the out-degree (Figure 3), while
        programmatic construction may leave it ``None``; normalisation makes
        ``parse_tspec(write_tspec(spec)) == spec.normalized()`` hold.
        """
        from dataclasses import replace
        filled = tuple(
            node if node.declared_out_degree is not None
            else replace(node, declared_out_degree=len(self.outgoing_edges(node.ident)))
            for node in self.nodes
        )
        return replace(self, nodes=filled)

    # -- summary ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counts the paper reports for a model: nodes, links, methods, …"""
        return {
            "attributes": len(self.attributes),
            "methods": len(self.methods),
            "nodes": len(self.nodes),
            "links": len(self.edges),
        }

    def describe(self) -> str:
        header = f"class {self.name}"
        if self.superclass:
            header += f" : {self.superclass}"
        if self.is_abstract:
            header += " (abstract)"
        counts = self.stats()
        body = (
            f"{counts['attributes']} attributes, {counts['methods']} methods, "
            f"TFM with {counts['nodes']} nodes / {counts['links']} links"
        )
        return f"{header} — {body}"
