"""Set/reset capability: putting an object into a predefined state.

Sec. 3.3: "A set/reset method could also be defined, to set an object to a
predefined internal state, independent of the object's current state.  This
kind of method is not used in this study since the test of each transaction
sets the object to a initial state […]".  It is implemented here as the
optional BIT capability it is in the literature: useful to start tests deep
inside an object's state space, or to replay a failure from a recorded
snapshot.

Two layers:

* :class:`Restorable` — a mixin adding ``bit_set_state`` / ``bit_reset``:
  the default implementation restores plain instance attributes from a
  recorded snapshot; components with richer internals (linked structures)
  override ``bit_set_state``;
* :class:`StateCheckpoint` — capture-now/restore-later over any object with
  the capability, with the access control enforced (set/reset is a test
  facility; it must not exist for production callers).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from ..core.errors import BitError
from . import access


class Restorable:
    """Mixin adding the set/reset BIT capability."""

    def bit_capture_state(self) -> Dict[str, Any]:
        """A deep snapshot of the instance attributes (test mode only)."""
        access.require_test_mode(type(self), "set/reset")
        return {
            name: copy.deepcopy(value)
            for name, value in vars(self).items()
            if not name.startswith("_bit_")
        }

    def bit_set_state(self, state: Dict[str, Any]) -> None:
        """Restore a previously captured state (test mode only).

        The default replaces the instance attributes wholesale.  Components
        whose state has internal aliasing (linked nodes, caches) should
        override this to rebuild the structure from the snapshot.
        """
        access.require_test_mode(type(self), "set/reset")
        for name in [n for n in vars(self) if not n.startswith("_bit_")]:
            delattr(self, name)
        for name, value in state.items():
            setattr(self, name, copy.deepcopy(value))

    def bit_reset(self) -> None:
        """Back to the initial state: re-run ``__init__`` with no arguments.

        Components whose constructor needs arguments override this (or
        record an initial checkpoint instead).
        """
        access.require_test_mode(type(self), "set/reset")
        type(self).__init__(self)


class StateCheckpoint:
    """Capture an object's state now; restore it any number of times later.

    Works with :class:`Restorable` objects and, as a fallback, with plain
    objects (attribute-level deep copy).  Example::

        checkpoint = StateCheckpoint(account)
        account.Withdraw(50)
        checkpoint.restore()          # back to the captured balance
    """

    def __init__(self, target: Any):
        access.require_test_mode(type(target), "set/reset")
        self._target = target
        self._state = self._capture()

    def _capture(self) -> Dict[str, Any]:
        capture = getattr(self._target, "bit_capture_state", None)
        if callable(capture):
            return capture()
        attributes = getattr(self._target, "__dict__", None)
        if attributes is None:
            raise BitError(
                f"{type(self._target).__name__} has no restorable state "
                "(no __dict__ and no bit_capture_state)"
            )
        return {
            name: copy.deepcopy(value)
            for name, value in attributes.items()
            if not name.startswith("_bit_")
        }

    @property
    def state(self) -> Dict[str, Any]:
        return dict(self._state)

    def restore(self) -> None:
        """Put the object back into the captured state."""
        setter = getattr(self._target, "bit_set_state", None)
        if callable(setter):
            setter(dict(self._state))
            return
        for name in [
            n for n in vars(self._target) if not n.startswith("_bit_")
        ]:
            delattr(self._target, name)
        for name, value in self._state.items():
            setattr(self._target, name, copy.deepcopy(value))

    def recapture(self) -> None:
        """Replace the stored state with the object's current state."""
        self._state = self._capture()


def run_from_state(target: Any, state: Optional[Dict[str, Any]],
                   action, *args, **kwargs):
    """Execute ``action`` with ``target`` forced into ``state`` first.

    The deep-state testing helper: with ``state=None`` the object is used
    as-is.  Returns the action's result; the object is left in whatever
    state the action produced (capture a checkpoint first to undo).
    """
    if state is not None:
        setter = getattr(target, "bit_set_state", None)
        if not callable(setter):
            raise BitError(
                f"{type(target).__name__} lacks the set/reset capability"
            )
        setter(dict(state))
    return action(*args, **kwargs)
