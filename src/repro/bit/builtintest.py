"""The ``BuiltInTest`` superclass (Figure 4 of the paper).

The paper defines an abstract class ``BuiltInTest`` with two interfaces —
``InvariantTest`` and ``Reporter`` — "created to guarantee a built-in test
interface independent from the target class interface.  The target class
[…] inherits these capabilities, that should be redefined by the user."

The Python rendition is a mixin:

* producers redefine :meth:`class_invariant` to return whether the object's
  state is valid (the predicate of the ``ClassInvariant`` macro);
* :meth:`invariant_test` evaluates it and raises
  :class:`~repro.core.errors.InvariantViolation` on failure — this is what
  generated drivers call before and after every method (Figure 6);
* :meth:`reporter` snapshots the internal state, optionally appending it to
  a log file.

Both BIT methods are guarded by the access control: outside test mode they
raise :class:`~repro.core.errors.TestModeError`, the runtime analogue of the
capabilities not being compiled in.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import InvariantViolation
from . import access
from .reporter import StateReport


class BuiltInTest:
    """Mixin adding the built-in test interface to a component class."""

    def class_invariant(self) -> bool:
        """The invariant predicate; producers redefine this.

        The default accepts every state, so mixing in :class:`BuiltInTest`
        never breaks an uncontracted class.
        """
        return True

    def invariant_test(self) -> None:
        """Check the class invariant; raise :class:`InvariantViolation` if broken.

        Mirrors ``CUT->InvariantTest()`` in generated drivers (Figure 6).
        """
        access.require_test_mode(type(self), "InvariantTest")
        if not self.class_invariant():
            raise InvariantViolation(subject=type(self).__name__)

    def reporter(self, destination: Optional[str] = None) -> StateReport:
        """Capture the object's internal state (Figure 6's ``Reporter``).

        With ``destination``, the report is also appended to that file, as
        in ``CUT->Reporter("Result.txt")``.
        """
        access.require_test_mode(type(self), "Reporter")
        report = StateReport.capture(self)
        if destination is not None:
            with open(destination, "a", encoding="utf-8") as stream:
                report.write(stream)
        return report

    @classmethod
    def has_builtin_test(cls) -> bool:
        """Marker used by the harness to detect BIT-capable components."""
        return True


def is_self_testable(target: type) -> bool:
    """True when a class carries the built-in test interface.

    Accepts both :class:`BuiltInTest` subclasses and duck-typed classes that
    implement the two BIT methods themselves.
    """
    if isinstance(target, type) and issubclass(target, BuiltInTest):
        return True
    return all(
        callable(getattr(target, name, None))
        for name in ("invariant_test", "reporter", "class_invariant")
    )
