"""Contract assertions: the Figure-5 macros, in Python.

Concat's macro library defines ``ClassInvariant(exp)``, ``PreCondition(exp)``
and ``PostCondition(exp)``, each throwing when the expression is false.  The
direct analogues here are :func:`check_invariant`, :func:`check_precondition`
and :func:`check_postcondition`, called from inside component method bodies.

Like the macros — which are compiled out when the component is not built in
test mode — the check functions are **no-ops outside test mode**.  Predicates
may be values (already evaluated) or zero-argument callables (evaluated only
when the check actually runs, so expensive predicates cost nothing in
production).

For producers who prefer declarative contracts, the :func:`require` /
:func:`ensure` decorators attach pre/post-conditions to a method without
touching its body; they follow the same test-mode gating.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Union

from ..core.errors import (
    InvariantViolation,
    PostconditionViolation,
    PreconditionViolation,
)
from . import access

Predicate = Union[bool, Callable[[], Any]]


def _holds(expression: Predicate) -> bool:
    if callable(expression):
        return bool(expression())
    return bool(expression)


def check_invariant(expression: Predicate, subject: str = "",
                    message: str = "") -> None:
    """``ClassInvariant(exp)``: raise :class:`InvariantViolation` when false."""
    if not access.is_test_mode():
        return
    if not _holds(expression):
        raise InvariantViolation(message or "Invariant is violated!", subject)


def check_precondition(expression: Predicate, subject: str = "",
                       message: str = "") -> None:
    """``PreCondition(exp)``: raise :class:`PreconditionViolation` when false."""
    if not access.is_test_mode():
        return
    if not _holds(expression):
        raise PreconditionViolation(message or "Pre-condition is violated!", subject)


def check_postcondition(expression: Predicate, subject: str = "",
                        message: str = "") -> None:
    """``PostCondition(exp)``: raise :class:`PostconditionViolation` when false."""
    if not access.is_test_mode():
        return
    if not _holds(expression):
        raise PostconditionViolation(message or "Post-condition is violated!", subject)


# ---------------------------------------------------------------------------
# Declarative method contracts
# ---------------------------------------------------------------------------


def require(predicate: Callable[..., Any], message: str = "") -> Callable:
    """Attach a precondition to a method.

    ``predicate`` receives the same arguments as the method (including
    ``self``) and must be truthy for the call to proceed::

        @require(lambda self, amount: amount > 0, "amount must be positive")
        def deposit(self, amount): ...
    """

    def decorate(method: Callable) -> Callable:
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            if access.is_test_mode(type(self)) and not predicate(self, *args, **kwargs):
                raise PreconditionViolation(
                    message or "Pre-condition is violated!",
                    f"{type(self).__name__}.{method.__name__}",
                )
            return method(self, *args, **kwargs)

        wrapper.__contract_pre__ = (predicate, message)
        return wrapper

    return decorate


def ensure(predicate: Callable[..., Any], message: str = "") -> Callable:
    """Attach a postcondition to a method.

    ``predicate`` receives ``(self, result, *args, **kwargs)`` after the
    method returns::

        @ensure(lambda self, result: result >= 0, "balance stays non-negative")
        def withdraw(self, amount): ...
    """

    def decorate(method: Callable) -> Callable:
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            result = method(self, *args, **kwargs)
            if access.is_test_mode(type(self)) and not predicate(self, result, *args, **kwargs):
                raise PostconditionViolation(
                    message or "Post-condition is violated!",
                    f"{type(self).__name__}.{method.__name__}",
                )
            return result

        wrapper.__contract_post__ = (predicate, message)
        return wrapper

    return decorate


def invariant_checked(method: Callable) -> Callable:
    """Wrap a method so the object's invariant is checked before and after.

    Requires the object to provide ``invariant_test()`` (e.g. by inheriting
    :class:`~repro.bit.builtintest.BuiltInTest`).  Outside test mode the
    wrapper is transparent.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        checking = access.is_test_mode(type(self))
        if checking:
            self.invariant_test()
        result = method(self, *args, **kwargs)
        if checking:
            self.invariant_test()
        return result

    wrapper.__invariant_checked__ = True
    return wrapper


def has_contracts(method: Callable) -> bool:
    """True when a callable carries any declarative contract metadata."""
    return any(
        hasattr(method, marker)
        for marker in ("__contract_pre__", "__contract_post__", "__invariant_checked__")
    )
