"""Dynamic class instrumentation: the "compile in test mode" analogue.

The paper's consumer compiles a component *in test mode* to get a version
with BIT capabilities; the production build excludes them via compiler
directives (sec. 3.1, 3.3).  Python needs no recompilation: this module
builds, at runtime, an **instrumented subclass** of the component that

* mixes in :class:`~repro.bit.builtintest.BuiltInTest` (invariant test +
  reporter),
* installs a producer-supplied invariant predicate,
* wraps every public method with call tracing and (optionally) automatic
  invariant checking around the call,
* carries the embedded t-spec as ``__tspec__``.

:func:`compile_component` is the directive analogue: it returns the
instrumented class when asked for test mode and the **original, untouched
class** otherwise — production code paths never see a wrapper.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from ..core.errors import InstrumentationError
from ..tspec.model import ClassSpec
from . import access
from .builtintest import BuiltInTest
from .trace import CallTracer

#: Attribute names the wrapper machinery reserves on instrumented classes.
_MARKER = "_bit_instrumented"
_ORIGINAL = "_bit_original"
_TRACER = "_bit_tracer"

#: Method names never wrapped: BIT interface + lifecycle internals.
_EXCLUDED = {
    "class_invariant",
    "invariant_test",
    "reporter",
    "has_builtin_test",
}


def is_instrumented(target: type) -> bool:
    """True when ``target`` was produced by :func:`instrument`."""
    return bool(getattr(target, _MARKER, False))


def original_class(target: type) -> type:
    """The pristine class an instrumented class was built from."""
    if not is_instrumented(target):
        return target
    return getattr(target, _ORIGINAL)


def tracer_of(target: type) -> Optional[CallTracer]:
    """The tracer attached to an instrumented class (None otherwise)."""
    return getattr(target, _TRACER, None)


def _wrap_method(name: str, function: Callable, tracer: CallTracer,
                 check_invariants: bool) -> Callable:
    @functools.wraps(function)
    def wrapper(self, *args, **kwargs):
        checking = check_invariants and access.is_test_mode(type(self))
        if checking and name != "__init__":
            self.invariant_test()
        try:
            result = function(self, *args, **kwargs)
        except BaseException as error:
            tracer.record_raise(self, name, args, kwargs, error)
            raise
        tracer.record_return(self, name, args, kwargs, result)
        if checking:
            self.invariant_test()
        return result

    wrapper.__bit_wrapped__ = True
    return wrapper


def _wrappable_methods(target: type):
    """Public callables of the class, looked up through the MRO."""
    names = set()
    for klass in target.__mro__:
        if klass in (object, BuiltInTest):
            continue
        names.update(klass.__dict__)
    for name in sorted(names):
        if name in _EXCLUDED or name.startswith("_bit_"):
            continue
        if name.startswith("__") and name != "__init__":
            continue
        if name.startswith("_") and name != "__init__":
            continue
        member = getattr(target, name, None)
        if callable(member) and not isinstance(
            target.__dict__.get(name), (staticmethod, classmethod, property)
        ):
            # Only instance methods are transactions; class/static methods and
            # properties stay untouched.
            function = _underlying_function(target, name)
            if function is not None:
                yield name, function


def _underlying_function(target: type, name: str) -> Optional[Callable]:
    for klass in target.__mro__:
        if name in klass.__dict__:
            candidate = klass.__dict__[name]
            if isinstance(candidate, (staticmethod, classmethod, property)):
                return None
            if callable(candidate):
                return candidate
            return None
    return None


def instrument(target: type,
               spec: Optional[ClassSpec] = None,
               invariant: Optional[Callable] = None,
               check_invariants: bool = False,
               tracer: Optional[CallTracer] = None,
               class_name: Optional[str] = None) -> type:
    """Build the instrumented (self-testable) variant of ``target``.

    Parameters
    ----------
    target:
        The component class.  Must not already be instrumented.
    spec:
        The embedded t-spec; stored as ``__tspec__``.  When the class
        already embeds one (a self-testable component), it is inherited.
    invariant:
        Predicate ``invariant(self) -> bool`` installed as
        ``class_invariant``.  When omitted, an existing ``class_invariant``
        (from the class itself) is kept.
    check_invariants:
        When true, every wrapped method checks the invariant before and
        after executing (in test mode).  Default false: the paper's drivers
        perform the invariant calls themselves (Figure 6).
    tracer:
        Call tracer to attach; a fresh one is created when omitted.
    """
    if not isinstance(target, type):
        raise InstrumentationError(f"can only instrument classes, not {target!r}")
    if is_instrumented(target):
        raise InstrumentationError(f"{target.__name__} is already instrumented")

    call_tracer = tracer if tracer is not None else CallTracer()
    namespace: dict = {
        _MARKER: True,
        _ORIGINAL: target,
        _TRACER: call_tracer,
    }

    if spec is not None:
        namespace["__tspec__"] = spec
    if invariant is not None:
        namespace["class_invariant"] = lambda self: bool(invariant(self))

    for name, function in _wrappable_methods(target):
        namespace[name] = _wrap_method(name, function, call_tracer, check_invariants)

    bases = (target,) if issubclass(target, BuiltInTest) else (target, BuiltInTest)
    new_name = class_name or target.__name__
    instrumented = type(new_name, bases, namespace)
    instrumented.__module__ = target.__module__
    instrumented.__doc__ = target.__doc__
    return instrumented


def compile_component(target: type, test_mode: bool, **options) -> type:
    """The compiler-directive analogue (sec. 3.3).

    ``test_mode=True`` returns the instrumented class (building it on
    demand); ``test_mode=False`` returns the original class unchanged, so a
    production build carries no BIT machinery at all.
    """
    if not test_mode:
        return original_class(target)
    if is_instrumented(target):
        return target
    return instrument(target, **options)
