"""Built-in test (BIT) capabilities: access control, assertions, reporter,
the ``BuiltInTest`` mixin, dynamic instrumentation, and call tracing."""

from .access import (
    disable_for_class,
    enable_for_class,
    is_test_mode,
    require_test_mode,
    reset,
    set_test_mode,
    test_mode,
)
from .assertions import (
    check_invariant,
    check_postcondition,
    check_precondition,
    ensure,
    has_contracts,
    invariant_checked,
    require,
)
from .builtintest import BuiltInTest, is_self_testable
from .instrument import (
    compile_component,
    instrument,
    is_instrumented,
    original_class,
    tracer_of,
)
from .reporter import StateReport, report_to_file, snapshot_value
from .setreset import Restorable, StateCheckpoint, run_from_state
from .trace import CallTracer, TraceEvent

__all__ = [
    "BuiltInTest",
    "CallTracer",
    "Restorable",
    "StateCheckpoint",
    "StateReport",
    "TraceEvent",
    "check_invariant",
    "check_postcondition",
    "check_precondition",
    "compile_component",
    "disable_for_class",
    "enable_for_class",
    "ensure",
    "has_contracts",
    "instrument",
    "invariant_checked",
    "is_instrumented",
    "is_self_testable",
    "is_test_mode",
    "original_class",
    "report_to_file",
    "require",
    "require_test_mode",
    "run_from_state",
    "reset",
    "set_test_mode",
    "snapshot_value",
    "test_mode",
    "tracer_of",
]
