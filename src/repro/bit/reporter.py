"""State reporting: observability for the built-in test interface.

The paper's ``Reporter`` method "store[s] the object's internal state" into
the test log (Figure 6).  Here the reporter is introspection-based: it
snapshots an object's instance attributes into a plain, deterministic,
comparable structure.  Snapshots serve two masters:

* the test log — human-readable dump after each test case;
* the oracle — two snapshots compare with ``==``, so a golden snapshot from
  the original class detects state deviations in a mutant.

Snapshotting is defensive: reference cycles are cut, depth is bounded, and
unknown objects degrade to ``<ClassName>`` placeholders rather than pulling
arbitrary object graphs (or raising) mid-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, TextIO, Tuple

MAX_DEPTH = 6
MAX_ITEMS = 200


def snapshot_value(value: Any, depth: int = 0, seen: Set[int] = None) -> Any:
    """Convert a runtime value into a comparable plain structure."""
    if seen is None:
        seen = set()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if depth >= MAX_DEPTH:
        return f"<depth-limit:{type(value).__name__}>"
    identity = id(value)
    if identity in seen:
        return "<cycle>"
    seen = seen | {identity}

    if isinstance(value, (list, tuple)):
        items = [snapshot_value(item, depth + 1, seen) for item in value[:MAX_ITEMS]]
        if len(value) > MAX_ITEMS:
            items.append(f"<{len(value) - MAX_ITEMS} more>")
        return tuple(items) if isinstance(value, tuple) else items
    if isinstance(value, dict):
        rendered = {}
        for index, (key, item) in enumerate(value.items()):
            if index >= MAX_ITEMS:
                rendered["<truncated>"] = f"<{len(value) - MAX_ITEMS} more>"
                break
            rendered[str(key)] = snapshot_value(item, depth + 1, seen)
        return rendered
    if isinstance(value, (set, frozenset)):
        try:
            ordered = sorted(value, key=repr)
        except Exception:
            ordered = list(value)
        return {"<set>": [snapshot_value(item, depth + 1, seen) for item in ordered[:MAX_ITEMS]]}
    state_method = getattr(value, "bit_state", None)
    if callable(state_method):
        try:
            described = state_method()
        except Exception:
            described = None
        if isinstance(described, dict):
            return {
                "<class>": type(value).__name__,
                **{
                    str(name): snapshot_value(item, depth + 1, seen)
                    for name, item in sorted(described.items())
                },
            }
    if hasattr(value, "__dict__"):
        fields = {
            name: snapshot_value(attr, depth + 1, seen)
            for name, attr in sorted(vars(value).items())
            if not name.startswith("_bit_")
        }
        return {"<class>": type(value).__name__, **fields}
    slots = getattr(type(value), "__slots__", None)
    if slots:
        fields = {
            name: snapshot_value(getattr(value, name, "<unset>"), depth + 1, seen)
            for name in sorted(slots)
            if not name.startswith("_bit_")
        }
        return {"<class>": type(value).__name__, **fields}
    return f"<{type(value).__name__}>"


@dataclass(frozen=True)
class StateReport:
    """One snapshot of an object's internal state."""

    class_name: str
    state: Tuple[Tuple[str, Any], ...]  # sorted (attribute, snapshot) pairs

    @classmethod
    def capture(cls, target: Any) -> "StateReport":
        state_method = getattr(target, "bit_state", None)
        if callable(state_method):
            # Components may describe their own observable state (the
            # producer "redefines the Reporter", per Figure 4); this beats
            # raw attribute dumping for pointer-rich structures.
            described = state_method()
            if isinstance(described, dict):
                state = tuple(
                    (str(name), snapshot_value(value))
                    for name, value in sorted(described.items())
                )
                return cls(class_name=type(target).__name__, state=state)
        attributes = getattr(target, "__dict__", {})
        state = tuple(
            (name, snapshot_value(value))
            for name, value in sorted(attributes.items())
            if not name.startswith("_bit_")
        )
        return cls(class_name=type(target).__name__, state=state)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.state)

    def format(self) -> str:
        lines: List[str] = [f"--- state of {self.class_name} ---"]
        if not self.state:
            lines.append("(no instance attributes)")
        for name, value in self.state:
            lines.append(f"{name} = {value!r}")
        return "\n".join(lines)

    def write(self, stream: TextIO) -> None:
        stream.write(self.format())
        stream.write("\n")

    def differs_from(self, other: "StateReport") -> Tuple[str, ...]:
        """Names of attributes whose snapshots differ (or exist on one side)."""
        mine = self.as_dict()
        theirs = other.as_dict()
        names = sorted(set(mine) | set(theirs))
        return tuple(
            name for name in names if mine.get(name, "<absent>") != theirs.get(name, "<absent>")
        )


def report_to_file(target: Any, path: str) -> StateReport:
    """Capture and append a state report to a log file (Figure 6's pattern)."""
    report = StateReport.capture(target)
    with open(path, "a", encoding="utf-8") as stream:
        report.write(stream)
    return report
