"""Method-call tracing: the observability half of built-in test.

Design-for-testability literature (Binder 1994, cited by the paper) lists
*observability* of intermediate results as a core attribute of testable
software.  The tracer records every call into an instrumented component —
method name, arguments, outcome — so a tester (or the harness's oracle) can
inspect what actually happened during a transaction, not only the final
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple


def _safe_repr(value: Any, limit: int = 120) -> str:
    try:
        text = repr(value)
    except Exception as error:  # a hostile __repr__ must not kill the trace
        text = f"<repr failed: {type(error).__name__}>"
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


@dataclass(frozen=True)
class TraceEvent:
    """One observed method call."""

    class_name: str
    method: str
    arguments: Tuple[str, ...]
    outcome: str          # "return" or "raise"
    detail: str           # repr of the result, or "ExcType: message"

    def format(self) -> str:
        args = ", ".join(self.arguments)
        arrow = "->" if self.outcome == "return" else "!!"
        return f"{self.class_name}.{self.method}({args}) {arrow} {self.detail}"


class CallTracer:
    """Accumulates :class:`TraceEvent` records for instrumented classes."""

    def __init__(self, capacity: int = 100_000):
        self._events: List[TraceEvent] = []
        self._capacity = capacity
        self._dropped = 0
        self.enabled = True

    # -- recording ---------------------------------------------------------
    #
    # The enabled/capacity gate runs *before* any string rendering: a
    # disabled tracer (deployment mode) or a full buffer must not charge
    # every call the cost of repr-ing its result and arguments.  The gate
    # keeps the exact observable behaviour of the recorded path — same
    # events, same ``dropped`` accounting — it only moves the rendering
    # behind it.

    def record_return(self, instance: Any, method: str,
                      args: tuple, kwargs: dict, result: Any) -> None:
        if not self._admit():
            return
        self._append(instance, method, args, kwargs, "return",
                     _safe_repr(result))

    def record_raise(self, instance: Any, method: str,
                     args: tuple, kwargs: dict, error: BaseException) -> None:
        if not self._admit():
            return
        self._append(instance, method, args, kwargs, "raise",
                     f"{type(error).__name__}: {error}")

    def _admit(self) -> bool:
        """Whether the next event will be stored; counts a drop if not."""
        if not self.enabled:
            return False
        if len(self._events) >= self._capacity:
            self._dropped += 1
            return False
        return True

    def _append(self, instance: Any, method: str, args: tuple,
                kwargs: dict, outcome: str, detail: str) -> None:
        arguments = tuple(
            [_safe_repr(a) for a in args]
            + [f"{k}={_safe_repr(v)}" for k, v in kwargs.items()]
        )
        self._events.append(
            TraceEvent(
                class_name=type(instance).__name__,
                method=method,
                arguments=arguments,
                outcome=outcome,
                detail=detail,
            )
        )

    # -- inspection ---------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because capacity was reached (never silent)."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def calls_to(self, method: str) -> Tuple[TraceEvent, ...]:
        return tuple(event for event in self._events if event.method == method)

    def method_sequence(self) -> Tuple[str, ...]:
        """Just the method names, in call order — compares against a transaction."""
        return tuple(event.method for event in self._events)

    def format(self, last: Optional[int] = None) -> str:
        events = self._events if last is None else self._events[-last:]
        lines = [event.format() for event in events]
        if self._dropped:
            lines.append(f"<{self._dropped} events dropped at capacity>")
        return "\n".join(lines)
