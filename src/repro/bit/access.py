"""BIT access control: the test-mode switch.

In the paper, built-in test capabilities are guarded by a *BIT access
control* "which consists in a compiler directive which includes or excludes
BIT capabilities" (sec. 3.3).  Python has no preprocessor, so the guard is a
runtime switch with the same contract:

* BIT services (``invariant_test``, ``reporter``, embedded assertions) are
  **unavailable** unless test mode is on — calling them raises
  :class:`TestModeError`, and embedded contract checks evaluate to no-ops so
  production behaviour carries no checking overhead beyond one flag read;
* test mode can be global or scoped to specific classes, mirroring compiling
  only the component under test in test mode.

The usual entry point is the :func:`test_mode` context manager::

    with test_mode():
        component.invariant_test()
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, Optional, Type

from ..core.errors import TestModeError


class _AccessState:
    """Process-wide switch state.

    Scoped enablement (:func:`test_mode`) is counted, not boolean:
    several test sessions may overlap — the pipelined scenario sweep runs
    suites on concurrent threads — and one scope exiting must not switch
    the capability off under a neighbour still inside its own scope.  The
    absolute :func:`set_test_mode` switch is kept separate so manual
    on/off control behaves exactly as before.
    """

    def __init__(self):
        self.forced = False
        self.depth = 0
        self.enabled_classes: Dict[type, int] = {}
        self.lock = threading.Lock()

    def is_on_for(self, target: Optional[type]) -> bool:
        if self.forced or self.depth > 0:
            return True
        if target is None or not self.enabled_classes:
            return False
        return any(issubclass(target, enabled)
                   for enabled in self.enabled_classes)


_STATE = _AccessState()


def set_test_mode(on: bool) -> None:
    """Turn global test mode on or off (absolute, not scoped)."""
    _STATE.forced = bool(on)


def enable_for_class(target: Type) -> None:
    """Enable test mode for one class (and its subclasses) only."""
    with _STATE.lock:
        _STATE.enabled_classes[target] = \
            _STATE.enabled_classes.get(target, 0) + 1


def disable_for_class(target: Type) -> None:
    """Remove a per-class enablement (no-op when absent)."""
    with _STATE.lock:
        count = _STATE.enabled_classes.get(target, 0)
        if count <= 1:
            _STATE.enabled_classes.pop(target, None)
        else:
            _STATE.enabled_classes[target] = count - 1


def is_test_mode(target: Optional[type] = None) -> bool:
    """True when BIT capabilities are available.

    With a ``target`` class, per-class enablement is honoured; without one,
    only the global switches count.
    """
    return _STATE.is_on_for(target)


def require_test_mode(target: Optional[type] = None, capability: str = "BIT") -> None:
    """Raise :class:`TestModeError` unless test mode is on."""
    if not is_test_mode(target):
        name = target.__name__ if target is not None else "component"
        raise TestModeError(
            f"{capability} capability of {name} requires test mode; "
            "wrap the call in `with test_mode():` or call set_test_mode(True)"
        )


@contextlib.contextmanager
def test_mode(target: Optional[Type] = None) -> Iterator[None]:
    """Context manager enabling test mode globally or for one class.

    Scopes nest and overlap freely (including across threads): the
    capability stays on until the last scope exits.
    """
    if target is None:
        with _STATE.lock:
            _STATE.depth += 1
        try:
            yield
        finally:
            with _STATE.lock:
                _STATE.depth -= 1
    else:
        enable_for_class(target)
        try:
            yield
        finally:
            disable_for_class(target)


def reset() -> None:
    """Restore the pristine off state (used by tests)."""
    with _STATE.lock:
        _STATE.forced = False
        _STATE.depth = 0
        _STATE.enabled_classes.clear()
