"""BIT access control: the test-mode switch.

In the paper, built-in test capabilities are guarded by a *BIT access
control* "which consists in a compiler directive which includes or excludes
BIT capabilities" (sec. 3.3).  Python has no preprocessor, so the guard is a
runtime switch with the same contract:

* BIT services (``invariant_test``, ``reporter``, embedded assertions) are
  **unavailable** unless test mode is on — calling them raises
  :class:`TestModeError`, and embedded contract checks evaluate to no-ops so
  production behaviour carries no checking overhead beyond one flag read;
* test mode can be global or scoped to specific classes, mirroring compiling
  only the component under test in test mode.

The usual entry point is the :func:`test_mode` context manager::

    with test_mode():
        component.invariant_test()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Set, Type

from ..core.errors import TestModeError


class _AccessState:
    """Process-wide switch state (one tester drives one test session)."""

    def __init__(self):
        self.global_on = False
        self.enabled_classes: Set[type] = set()

    def is_on_for(self, target: Optional[type]) -> bool:
        if self.global_on:
            return True
        if target is None:
            return False
        return any(issubclass(target, enabled) for enabled in self.enabled_classes)


_STATE = _AccessState()


def set_test_mode(on: bool) -> None:
    """Turn global test mode on or off."""
    _STATE.global_on = bool(on)


def enable_for_class(target: Type) -> None:
    """Enable test mode for one class (and its subclasses) only."""
    _STATE.enabled_classes.add(target)


def disable_for_class(target: Type) -> None:
    """Remove a per-class enablement (no-op when absent)."""
    _STATE.enabled_classes.discard(target)


def is_test_mode(target: Optional[type] = None) -> bool:
    """True when BIT capabilities are available.

    With a ``target`` class, per-class enablement is honoured; without one,
    only the global switch counts.
    """
    return _STATE.is_on_for(target)


def require_test_mode(target: Optional[type] = None, capability: str = "BIT") -> None:
    """Raise :class:`TestModeError` unless test mode is on."""
    if not is_test_mode(target):
        name = target.__name__ if target is not None else "component"
        raise TestModeError(
            f"{capability} capability of {name} requires test mode; "
            "wrap the call in `with test_mode():` or call set_test_mode(True)"
        )


@contextlib.contextmanager
def test_mode(target: Optional[Type] = None) -> Iterator[None]:
    """Context manager enabling test mode globally or for one class."""
    if target is None:
        previous = _STATE.global_on
        _STATE.global_on = True
        try:
            yield
        finally:
            _STATE.global_on = previous
    else:
        added = target not in _STATE.enabled_classes
        _STATE.enabled_classes.add(target)
        try:
            yield
        finally:
            if added:
                _STATE.enabled_classes.discard(target)


def reset() -> None:
    """Restore the pristine off state (used by tests)."""
    _STATE.global_on = False
    _STATE.enabled_classes.clear()
