"""``python -m repro.scenarios`` — the scenario-corpus command line.

Subcommands:

* ``list`` — show the (filtered, sharded) registry entries;
* ``validate`` — full registry validation; exit 1 with every problem on
  stderr when anything is wrong;
* ``run`` — execute the sweep through the mutation pipeline and write
  the aggregated JSON report; exit 1 when any unmutated reference run
  failed its oracle or any scenario errored (the CI gate);
* ``report`` — merge shard reports produced by ``run --report-out`` and
  apply the same gate to the merged whole.

The incremental-run, throughput, pruning, triage and telemetry flags are
the shared ones every table experiment uses
(:mod:`repro.experiments.cli`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..core.errors import ReproError
from ..experiments.cli import (
    add_cache_arguments,
    add_obs_arguments,
    add_prune_arguments,
    add_throughput_arguments,
    add_triage_arguments,
    add_workers_argument,
    batch_size_from_arguments,
    cache_from_arguments,
    compact_cache,
    finish_telemetry,
    prune_from_arguments,
    static_triage_from_arguments,
    telemetry_from_arguments,
)
from .registry import (
    ScenarioRegistry,
    builtin_registry,
    load_registry,
    parse_shard,
)
from .sweep import (
    SweepReport,
    SweepRunner,
    merge_reports,
    report_from_mapping,
)


def _add_selection_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry", default=None, metavar="PATH",
        help="scenario registry: a *.json file or a directory of them "
             "(default: the builtin corpus)",
    )
    parser.add_argument(
        "--filter", default="", metavar="EXPR",
        help="comma-separated terms, all must match (group, tag, family, "
             "component ref, or ident substring) — e.g. 'smoke' or "
             "'queue,indvarrepreq'",
    )
    parser.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run shard K of N (1-based; assignment hashes each "
             "scenario's content fingerprint — stable, disjoint, "
             "exhaustive)",
    )


def _registry_from(arguments: argparse.Namespace) -> ScenarioRegistry:
    if arguments.registry:
        return load_registry(arguments.registry)
    return builtin_registry()


def _selected(arguments: argparse.Namespace) -> ScenarioRegistry:
    registry = _registry_from(arguments).filtered(arguments.filter)
    if arguments.shard:
        registry = registry.shard(*parse_shard(arguments.shard))
    return registry


def _cmd_list(arguments: argparse.Namespace) -> int:
    registry = _selected(arguments)
    for scenario in registry:
        line = (f"{scenario.ident:<36} {scenario.component.describe():<22} "
                f"oracle={scenario.oracle}")
        if arguments.verbose:
            line += (f" operators={','.join(scenario.operators)}"
                     f" groups={','.join(scenario.groups) or '-'}"
                     f" tags={','.join(scenario.tags) or '-'}")
        print(line)
    print(f"{len(registry)} scenarios "
          f"(registry {registry.fingerprint()[:16]})")
    return 0


def _cmd_validate(arguments: argparse.Namespace) -> int:
    # load_registry already validates; the builtin path validates here.
    registry = _registry_from(arguments)
    problems = registry.validate()
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    print(f"ok: {len(registry)} scenarios, "
          f"registry {registry.fingerprint()[:16]}")
    return 0


def _write_report(report: SweepReport,
                  arguments: argparse.Namespace) -> None:
    if arguments.report_out:
        path = Path(arguments.report_out)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(timings=True), encoding="utf-8")
        print(f"report: {path}")


def _gate(report: SweepReport) -> int:
    """The shared run/report exit gate."""
    if report.passed:
        return 0
    for result in report.errors:
        print(f"error: {result.ident}: {result.error}", file=sys.stderr)
    if report.total_oracle_failures:
        print(
            f"error: {report.total_oracle_failures} oracle failure(s) on "
            f"unmutated components (BIT suites must run green)",
            file=sys.stderr,
        )
    return 1


def _progress_printer(arguments: argparse.Namespace):
    def progress(position, total, scenario, result):
        if not arguments.verbose:
            return
        status = "ERROR" if result.error else (
            "FAIL" if result.oracle_failures else "ok"
        )
        print(f"[{position:>4}/{total}] {scenario.ident:<36} "
              f"{result.killed:>3}/{result.mutants_total:<4} killed  "
              f"{status}")
    return progress


def _cmd_run_server(arguments: argparse.Namespace) -> int:
    """``run --server``: the sweep as daemon jobs, same report, same gate.

    The daemon owns the pipeline knobs (workers, cache, pruning…); the
    local flags select scenarios and render.  The deterministic
    projection of the report is byte-identical to an in-process run
    over the same selection — pinned by the differential tests.
    """
    from ..service.client import ServiceClient, sweep_over_server

    registry = _registry_from(arguments)
    shard = parse_shard(arguments.shard) if arguments.shard else None
    with ServiceClient(arguments.server) as client:
        report = sweep_over_server(
            client,
            registry,
            filter_expression=arguments.filter,
            shard=shard,
            max_scenarios=arguments.max_scenarios,
            progress=_progress_printer(arguments),
        )
    _write_report(report, arguments)
    print(report.render_text())
    return _gate(report)


def _cmd_run(arguments: argparse.Namespace) -> int:
    if arguments.server:
        return _cmd_run_server(arguments)
    registry = _registry_from(arguments)
    shard = parse_shard(arguments.shard) if arguments.shard else None
    telemetry = telemetry_from_arguments(arguments)
    cache = cache_from_arguments(arguments, telemetry)
    runner = SweepRunner(
        registry,
        workers=arguments.workers,
        workspace=arguments.workspace,
        cache=cache,
        batch_size=batch_size_from_arguments(arguments),
        prune=prune_from_arguments(arguments),
        static_triage=static_triage_from_arguments(arguments),
        telemetry=telemetry,
        inflight=arguments.inflight,
    )
    report = runner.run(
        filter_expression=arguments.filter,
        shard=shard,
        max_scenarios=arguments.max_scenarios,
        progress=_progress_printer(arguments),
    )
    # The artifact lands before any console output can fail (a closed
    # pipe must not cost CI its report upload).
    _write_report(report, arguments)
    print(report.render_text())
    if arguments.cache_stats and cache is not None:
        print(f"cache: {cache.snapshot().format()}")
        scenario_stats = cache.scenario_stats()
        if any(scenario_stats.values()):
            print("scenario cache: "
                  f"{scenario_stats['hits']} hits, "
                  f"{scenario_stats['misses']} misses, "
                  f"{scenario_stats['stores']} stores, "
                  f"{scenario_stats['corrupt']} corrupt")
    compact_cache(cache, arguments)
    finish_telemetry(telemetry, arguments)
    return _gate(report)


def _cmd_report(arguments: argparse.Namespace) -> int:
    reports: List[SweepReport] = []
    for name in arguments.reports:
        try:
            payload = json.loads(Path(name).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {name}: {error}", file=sys.stderr)
            return 2
        reports.append(report_from_mapping(payload))
    merged = merge_reports(reports)
    _write_report(merged, arguments)
    print(merged.render_text())
    return _gate(merged)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Scenario corpus: registry inspection and sweep runs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="show the (filtered, sharded) registry entries"
    )
    _add_selection_arguments(list_parser)
    list_parser.add_argument("-v", "--verbose", action="store_true",
                             help="also show operators, groups and tags")
    list_parser.set_defaults(handler=_cmd_list)

    validate_parser = commands.add_parser(
        "validate", help="validate a registry (exit 1 with all problems)"
    )
    validate_parser.add_argument(
        "--registry", default=None, metavar="PATH",
        help="registry file or directory (default: the builtin corpus)",
    )
    validate_parser.set_defaults(handler=_cmd_validate)

    run_parser = commands.add_parser(
        "run", help="execute the sweep and write the aggregated report"
    )
    _add_selection_arguments(run_parser)
    add_workers_argument(run_parser)
    run_parser.add_argument(
        "--workspace", default=None, metavar="DIR",
        help="directory for materialized generated components "
             "(default: a shared per-machine temp workspace)",
    )
    run_parser.add_argument(
        "--inflight", type=int, default=1, metavar="K",
        help="pipeline K scenarios concurrently onto the shared worker "
             "pool (default 1: sequential; the report is byte-identical "
             "either way)",
    )
    run_parser.add_argument(
        "--max-scenarios", type=int, default=0, metavar="N",
        help="run at most N scenarios (0 = all selected)",
    )
    run_parser.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the aggregated JSON report to PATH",
    )
    run_parser.add_argument(
        "--server", default=None, metavar="ADDR",
        help="run the sweep through a resident mutation service "
             "(python -m repro.service serve) at this UNIX socket path "
             "or host:port; the report is byte-identical to an "
             "in-process run",
    )
    run_parser.add_argument("-v", "--verbose", action="store_true",
                            help="print one progress line per scenario")
    add_cache_arguments(run_parser)
    add_throughput_arguments(run_parser)
    add_prune_arguments(run_parser)
    add_triage_arguments(run_parser)
    add_obs_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = commands.add_parser(
        "report", help="merge shard reports and re-apply the gate"
    )
    report_parser.add_argument(
        "reports", nargs="+", metavar="REPORT.json",
        help="shard reports written by `run --report-out`",
    )
    report_parser.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the merged JSON report to PATH",
    )
    report_parser.set_defaults(handler=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
