"""Materializing generated components as importable module files.

The mutation pipeline requires real source files: operators read method
bodies via ``inspect.getsource``, the outcome cache fingerprints classes
by their source text, and worker processes recompile mutants inside the
owner's defining module.  So a generated component is *written to disk*
in a workspace directory and imported from that file — its module name
embeds a content digest (see :mod:`repro.scenarios.genspec`), which makes
materialization idempotent and lets concurrent runs share one workspace:
the same recipe always lands on the same file with the same bytes.

``sys.path`` is never touched.  The module is loaded by file path and
registered in ``sys.modules`` under its canonical name; other processes
resolve the class through the pickling fallback in
:mod:`repro.scenarios.runtime`.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..core.errors import GenerationError
from .genspec import GeneratedComponent

PathLike = Union[str, Path]


def default_workspace() -> Path:
    """The shared per-machine workspace (content-addressed, so safe to
    share between runs and users; files are only ever byte-identical
    re-writes of themselves)."""
    return Path(tempfile.gettempdir()) / "repro-scenarios"


def write_module(component: GeneratedComponent,
                 workspace: Optional[PathLike] = None) -> Path:
    """Write the component's module file (atomically) and return its path.

    Idempotent: an existing file with the expected content is left
    untouched, so repeated sweeps don't churn mtimes or linecache.
    """
    root = Path(workspace) if workspace is not None else default_workspace()
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{component.module_name}.py"
    if path.exists():
        try:
            if path.read_text(encoding="utf-8") == component.source:
                return path
        except OSError:
            pass
    handle, staging = tempfile.mkstemp(
        dir=str(root), prefix=f".{component.module_name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(component.source)
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return path


def materialize(component: GeneratedComponent,
                workspace: Optional[PathLike] = None) -> type:
    """Write (if needed) and import the component; return its class.

    The module registers under its canonical content-hashed name, so a
    second materialization of the same recipe — even into a different
    workspace — reuses the already-loaded module and returns the same
    class object.
    """
    module = sys.modules.get(component.module_name)
    if module is None:
        path = write_module(component, workspace)
        spec = importlib.util.spec_from_file_location(
            component.module_name, path
        )
        if spec is None or spec.loader is None:
            raise GenerationError(
                f"cannot import generated module from {path}"
            )
        module = importlib.util.module_from_spec(spec)
        sys.modules[component.module_name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            sys.modules.pop(component.module_name, None)
            raise
    try:
        return getattr(module, component.class_name)
    except AttributeError:
        raise GenerationError(
            f"generated module {component.module_name} does not define "
            f"{component.class_name}"
        ) from None
