"""The sweep runner: executing a scenario registry end to end.

:class:`SweepRunner` drives every scenario of a (filtered, sharded)
:class:`~repro.scenarios.registry.ScenarioRegistry` through the existing
mutation pipeline — resolve the component (catalog ref or seeded
generator), generate the suite, build the operator battery, run the
serial or parallel engine — and folds the outcomes into one
:class:`SweepReport`.

Cost sharing across the sweep, not per scenario:

* generated components are synthesized and materialized once per
  ``(family, seed)`` — the 5 operator-split scenarios of one recipe reuse
  the same class object;
* suites are generated once per ``(component, suite-config)``;
* the reference run and its coverage matrix are recorded once per
  ``(component, suite)`` and *seeded* into every engine that needs them —
  exactly how the parallel engine seeds its workers;
* all parallel scenarios draw from one warm
  :class:`~repro.mutation.parallel.WorkerPool`, and an optional
  :class:`~repro.mutation.cache.MutationOutcomeCache` spans the sweep.

Determinism: :meth:`SweepReport.to_dict` with ``timings=False`` is the
*deterministic projection* — same registry, same seeds, same flags ⇒
byte-identical JSON.  Wall-clock, cache counters and the executed/skipped
case tallies (which legitimately vary warm-vs-cold and pruned-vs-not) are
confined to the ``timings=True`` rendering, mirroring
:meth:`~repro.mutation.analysis.MutationRun.same_results`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..components import component_by_name, setup_for, type_model_for
from ..core.errors import ReproError, ScenarioError
from ..generator.driver import DriverGenerator
from ..generator.suite import TestSuite
from ..harness.oracles import (
    CompositeOracle,
    assertions_only_oracle,
    experiment_oracle,
    log_level_oracle,
    output_only_oracle,
    paper_oracle,
)
from ..harness.outcomes import SuiteResult, Verdict
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.cache import MutationOutcomeCache
from ..mutation.coverage import CoverageMatrix
from ..mutation.generate import build_battery
from ..obs import Telemetry, coalesce
from ..obs.summary import aggregate_counters
from ..tspec.model import ClassSpec
from .genspec import GeneratorSpec, synthesize
from .materialize import PathLike, materialize
from .registry import ScenarioConfig, ScenarioRegistry, default_methods

#: Called after each scenario: ``(position, total, scenario, result)``.
ProgressCallback = Callable[[int, int, ScenarioConfig, "ScenarioResult"], None]

#: Schema tag of the report JSON (bump on incompatible shape changes).
REPORT_SCHEMA = "repro-sweep-report/1"


def resolve_oracle(name: str, spec: ClassSpec) -> CompositeOracle:
    """The oracle a registry entry names, bound to the component's spec."""
    if name == "experiment":
        return experiment_oracle(spec)
    if name == "paper":
        return paper_oracle()
    if name == "assertions":
        return assertions_only_oracle()
    if name == "output":
        return output_only_oracle()
    if name == "log":
        return log_level_oracle()
    raise ScenarioError(f"unknown oracle {name!r}")


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's aggregated outcome."""

    ident: str
    component: str
    scenario_fingerprint: str
    tags: Tuple[str, ...] = ()
    groups: Tuple[str, ...] = ()
    oracle: str = ""
    operators: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    suite_size: int = 0
    suite_fingerprint: str = ""
    mutants_total: int = 0
    mutants_truncated: bool = False
    compile_failures: int = 0
    duplicates_dropped: int = 0
    type_incompatible: int = 0
    killed: int = 0
    survived: int = 0
    statically_equivalent: int = 0
    dispatched: int = 0
    kill_reasons: Mapping[str, int] = field(default_factory=dict)
    step_timeouts: int = 0
    #: Reference-run cases whose verdict was not PASS: the sweep's gate —
    #: an unmutated component must run its BIT suite green.
    oracle_failures: int = 0
    cases_executed: int = 0
    cases_skipped: int = 0
    elapsed_seconds: float = 0.0
    #: Non-empty when the scenario failed outright (synthesis, battery or
    #: engine error) — the sweep records the failure and keeps going.
    error: str = ""

    @property
    def failed(self) -> bool:
        return bool(self.error) or self.oracle_failures > 0

    @property
    def mutation_score(self) -> float:
        if not self.mutants_total:
            return 0.0
        return self.killed / self.mutants_total

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """JSON-ready mapping; ``timings=False`` is the deterministic
        projection (verdict-bearing fields only — the per-result analogue
        of :meth:`~repro.mutation.analysis.MutationRun.same_results`)."""
        payload: Dict[str, Any] = {
            "ident": self.ident,
            "component": self.component,
            "scenario_fingerprint": self.scenario_fingerprint,
            "tags": list(self.tags),
            "groups": list(self.groups),
            "oracle": self.oracle,
            "operators": list(self.operators),
            "methods": list(self.methods),
            "suite_size": self.suite_size,
            "suite_fingerprint": self.suite_fingerprint,
            "mutants_total": self.mutants_total,
            "mutants_truncated": self.mutants_truncated,
            "compile_failures": self.compile_failures,
            "duplicates_dropped": self.duplicates_dropped,
            "type_incompatible": self.type_incompatible,
            "killed": self.killed,
            "survived": self.survived,
            "statically_equivalent": self.statically_equivalent,
            "kill_reasons": dict(sorted(self.kill_reasons.items())),
            "mutation_score": round(self.mutation_score, 6),
            "step_timeouts": self.step_timeouts,
            "oracle_failures": self.oracle_failures,
            "error": self.error,
        }
        if timings:
            payload.update({
                "dispatched": self.dispatched,
                "cases_executed": self.cases_executed,
                "cases_skipped": self.cases_skipped,
                "elapsed_seconds": round(self.elapsed_seconds, 6),
            })
        return payload


def _result_from_mapping(mapping: Mapping[str, Any]) -> ScenarioResult:
    return ScenarioResult(
        ident=str(mapping["ident"]),
        component=str(mapping.get("component", "")),
        scenario_fingerprint=str(mapping.get("scenario_fingerprint", "")),
        tags=tuple(mapping.get("tags", ())),
        groups=tuple(mapping.get("groups", ())),
        oracle=str(mapping.get("oracle", "")),
        operators=tuple(mapping.get("operators", ())),
        methods=tuple(mapping.get("methods", ())),
        suite_size=int(mapping.get("suite_size", 0)),
        suite_fingerprint=str(mapping.get("suite_fingerprint", "")),
        mutants_total=int(mapping.get("mutants_total", 0)),
        mutants_truncated=bool(mapping.get("mutants_truncated", False)),
        compile_failures=int(mapping.get("compile_failures", 0)),
        duplicates_dropped=int(mapping.get("duplicates_dropped", 0)),
        type_incompatible=int(mapping.get("type_incompatible", 0)),
        killed=int(mapping.get("killed", 0)),
        survived=int(mapping.get("survived", 0)),
        statically_equivalent=int(mapping.get("statically_equivalent", 0)),
        dispatched=int(mapping.get("dispatched", 0)),
        kill_reasons=dict(mapping.get("kill_reasons", {})),
        step_timeouts=int(mapping.get("step_timeouts", 0)),
        oracle_failures=int(mapping.get("oracle_failures", 0)),
        cases_executed=int(mapping.get("cases_executed", 0)),
        cases_skipped=int(mapping.get("cases_skipped", 0)),
        elapsed_seconds=float(mapping.get("elapsed_seconds", 0.0)),
        error=str(mapping.get("error", "")),
    )


@dataclass(frozen=True)
class SweepReport:
    """One sweep's (or one shard's) aggregated report."""

    registry_fingerprint: str
    results: Tuple[ScenarioResult, ...]
    filter_expression: str = ""
    shard: str = ""
    counters: Mapping[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    # -- gates ----------------------------------------------------------

    @property
    def total_oracle_failures(self) -> int:
        return sum(result.oracle_failures for result in self.results)

    @property
    def errors(self) -> Tuple[ScenarioResult, ...]:
        return tuple(result for result in self.results if result.error)

    @property
    def passed(self) -> bool:
        """The CI gate: every scenario ran, every unmutated reference run
        was oracle-green."""
        return not self.errors and self.total_oracle_failures == 0

    # -- aggregates -----------------------------------------------------

    @property
    def mutants_total(self) -> int:
        return sum(result.mutants_total for result in self.results)

    @property
    def mutants_killed(self) -> int:
        return sum(result.killed for result in self.results)

    def kill_reason_totals(self) -> Dict[str, int]:
        return aggregate_counters(
            result.kill_reasons for result in self.results
        )

    # -- rendering ------------------------------------------------------

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """JSON-ready mapping; results are ident-sorted so shard order and
        registry order never leak into the bytes.  ``timings=False`` drops
        wall-clock, telemetry counters and the executed-case tallies —
        the projection the determinism and shard-merge tests compare."""
        ordered = sorted(self.results, key=lambda result: result.ident)
        payload: Dict[str, Any] = {
            "schema": REPORT_SCHEMA,
            "registry_fingerprint": self.registry_fingerprint,
            "filter": self.filter_expression,
            "shard": self.shard,
            "scenarios": len(ordered),
            "mutants_total": self.mutants_total,
            "mutants_killed": self.mutants_killed,
            "kill_reasons": self.kill_reason_totals(),
            "oracle_failures": self.total_oracle_failures,
            "scenario_errors": len(self.errors),
            "results": [result.to_dict(timings=timings)
                        for result in ordered],
        }
        if timings:
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 6)
            payload["counters"] = dict(sorted(self.counters.items()))
        return payload

    def to_json(self, timings: bool = True) -> str:
        return json.dumps(
            self.to_dict(timings=timings), indent=2, sort_keys=True
        ) + "\n"

    def render_text(self) -> str:
        """Human-readable sweep summary (one line per scenario)."""
        lines = [
            f"sweep: {len(self.results)} scenarios, "
            f"{self.mutants_killed}/{self.mutants_total} mutants killed, "
            f"{self.total_oracle_failures} oracle failures, "
            f"{len(self.errors)} errors"
            + (f"  [shard {self.shard}]" if self.shard else ""),
            f"registry: {self.registry_fingerprint[:16]}"
            + (f"  filter: {self.filter_expression}"
               if self.filter_expression else ""),
        ]
        header = (f"  {'scenario':<34} {'component':<22} "
                  f"{'suite':>5} {'killed':>12} {'score':>6}  flags")
        lines.append(header)
        for result in sorted(self.results, key=lambda item: item.ident):
            if result.error:
                lines.append(
                    f"  {result.ident:<34} {result.component:<22} "
                    f"ERROR: {result.error}"
                )
                continue
            flags = []
            if result.oracle_failures:
                flags.append(f"oracle-failures={result.oracle_failures}")
            if result.mutants_truncated:
                flags.append("truncated")
            if result.statically_equivalent:
                flags.append(f"equiv={result.statically_equivalent}")
            lines.append(
                f"  {result.ident:<34} {result.component:<22} "
                f"{result.suite_size:>5} "
                f"{result.killed:>5}/{result.mutants_total:<6} "
                f"{result.mutation_score:>6.2f}  {' '.join(flags)}".rstrip()
            )
        return "\n".join(lines)


def report_from_mapping(mapping: Mapping[str, Any]) -> SweepReport:
    """Reconstruct a report from its parsed JSON (for shard merging)."""
    if mapping.get("schema") != REPORT_SCHEMA:
        raise ScenarioError(
            f"not a sweep report (schema {mapping.get('schema')!r}, "
            f"expected {REPORT_SCHEMA!r})"
        )
    return SweepReport(
        registry_fingerprint=str(mapping.get("registry_fingerprint", "")),
        results=tuple(
            _result_from_mapping(item)
            for item in mapping.get("results", ())
        ),
        filter_expression=str(mapping.get("filter", "")),
        shard=str(mapping.get("shard", "")),
        counters=dict(mapping.get("counters", {})),
        elapsed_seconds=float(mapping.get("elapsed_seconds", 0.0)),
    )


def merge_reports(reports: Sequence[SweepReport]) -> SweepReport:
    """Merge shard reports into one sweep report.

    All parts must come from the same registry (fingerprint equality) and
    no scenario may appear twice — disjoint shards guarantee both, and
    violating either is a configuration error worth failing loudly on.
    """
    if not reports:
        raise ScenarioError("nothing to merge: no reports given")
    fingerprints = {report.registry_fingerprint for report in reports}
    if len(fingerprints) != 1:
        raise ScenarioError(
            "cannot merge reports from different registries: "
            + ", ".join(sorted(item[:16] for item in fingerprints))
        )
    filters = {report.filter_expression for report in reports}
    seen: Dict[str, str] = {}
    merged: List[ScenarioResult] = []
    for report in reports:
        for result in report.results:
            if result.ident in seen:
                raise ScenarioError(
                    f"scenario {result.ident!r} appears in more than one "
                    f"report (shards must be disjoint)"
                )
            seen[result.ident] = report.shard
            merged.append(result)
    return SweepReport(
        registry_fingerprint=reports[0].registry_fingerprint,
        results=tuple(sorted(merged, key=lambda result: result.ident)),
        filter_expression=(filters.pop() if len(filters) == 1 else ""),
        shard="",
        counters=aggregate_counters(report.counters for report in reports),
        elapsed_seconds=sum(report.elapsed_seconds for report in reports),
    )


class SweepRunner:
    """Executes scenarios, sharing warm state across the whole sweep."""

    def __init__(self, registry: ScenarioRegistry,
                 workers: int = 1,
                 workspace: Optional[PathLike] = None,
                 cache: Optional[MutationOutcomeCache] = None,
                 batch_size: Optional[int] = None,
                 prune: bool = True,
                 static_triage: bool = True,
                 telemetry: Optional[Telemetry] = None,
                 pool: Optional[object] = None):
        """``workers > 1`` routes every non-empty battery through the
        parallel engine; ``pool`` overrides its worker pool (default: the
        process-wide shared pool, warm across scenarios).  ``cache``,
        ``prune``, ``static_triage``, ``batch_size`` and ``telemetry``
        are passed through to the engines unchanged."""
        if workers < 1:
            raise ScenarioError("workers must be >= 1")
        self._registry = registry
        self._workers = workers
        self._workspace = workspace
        self._cache = cache
        self._batch_size = batch_size
        self._prune = prune
        self._static_triage = static_triage
        self._telemetry = telemetry
        self._obs = coalesce(telemetry)
        self._pool = pool
        # Sweep-wide memos (see module docstring).
        self._classes: Dict[Tuple[str, int], type] = {}
        self._suites: Dict[Tuple[str, Tuple[int, int, int, int]],
                           TestSuite] = {}
        self._references: Dict[Tuple[str, str],
                               Tuple[SuiteResult,
                                     Optional[CoverageMatrix]]] = {}

    # -- component / suite resolution -----------------------------------

    def _resolve_component(self, scenario: ScenarioConfig
                           ) -> Tuple[type, ClassSpec,
                                      Optional[Callable[[], None]],
                                      Optional[object]]:
        """The scenario's class, spec, setup hook and triage type model."""
        selector = scenario.component
        if selector.is_generated:
            key = (selector.family, selector.seed)
            cls = self._classes.get(key)
            if cls is None:
                with self._obs.span("sweep.materialize",
                                    family=selector.family,
                                    seed=selector.seed):
                    component = synthesize(
                        GeneratorSpec(selector.family, selector.seed)
                    )
                    cls = materialize(component, self._workspace)
                self._classes[key] = cls
            return cls, cls.__tspec__, None, None
        cls = component_by_name(selector.ref)
        return (cls, cls.__tspec__,
                setup_for(selector.ref), type_model_for(selector.ref))

    def _suite_for(self, component_key: str,
                   scenario: ScenarioConfig, spec: ClassSpec) -> TestSuite:
        config = scenario.suite
        key = (component_key, (config.seed, config.edge_bound,
                               config.max_transactions, config.max_cases))
        suite = self._suites.get(key)
        if suite is None:
            suite = DriverGenerator(
                spec,
                seed=config.seed,
                edge_bound=config.edge_bound,
                max_transactions=config.max_transactions,
            ).generate()
            if config.max_cases and len(suite.cases) > config.max_cases:
                suite = dc_replace(
                    suite, cases=suite.cases[:config.max_cases]
                )
            self._suites[key] = suite
        return suite

    def _reference_for(self, component_key: str, cls: type,
                       suite: TestSuite,
                       setup: Optional[Callable[[], None]]
                       ) -> Tuple[SuiteResult, Optional[CoverageMatrix]]:
        """The (reference run, coverage matrix) pair, recorded once per
        (component, suite) and seeded into every engine downstream."""
        key = (component_key, suite.fingerprint())
        cached = self._references.get(key)
        if cached is None:
            recorder = MutationAnalysis(
                cls, suite, setup=setup, prune=self._prune,
                telemetry=self._telemetry,
            )
            cached = (recorder.reference_results(),
                      recorder.coverage_matrix())
            self._references[key] = cached
        return cached

    # -- execution ------------------------------------------------------

    def run_scenario(self, scenario: ScenarioConfig) -> ScenarioResult:
        """Execute one scenario; never raises — failures land in
        ``result.error`` so a sweep survives a bad entry."""
        started = time.perf_counter()
        try:
            return self._run_scenario(scenario, started)
        except ReproError as error:
            return ScenarioResult(
                ident=scenario.ident,
                component=scenario.component.describe(),
                scenario_fingerprint=scenario.fingerprint(),
                tags=scenario.tags,
                groups=scenario.groups,
                oracle=scenario.oracle,
                operators=scenario.operators,
                elapsed_seconds=time.perf_counter() - started,
                error=f"{type(error).__name__}: {error}",
            )

    def _run_scenario(self, scenario: ScenarioConfig,
                      started: float) -> ScenarioResult:
        cls, spec, setup, type_model = self._resolve_component(scenario)
        component_key = scenario.component.describe()
        methods = scenario.methods or default_methods(spec)
        suite = self._suite_for(component_key, scenario, spec)
        mutants, generation, truncated = build_battery(
            cls, methods,
            operator_names=scenario.operators,
            type_model=type_model,
            max_mutants=scenario.budgets.max_mutants,
            telemetry=self._telemetry,
        )
        reference, coverage = self._reference_for(
            component_key, cls, suite, setup
        )
        run = self._analyze(
            cls, suite, mutants, scenario, spec, setup, type_model,
            reference, coverage,
        )
        oracle_failures = sum(
            1 for result in run.reference.results
            if result.verdict is not Verdict.PASS
        )
        return ScenarioResult(
            ident=scenario.ident,
            component=component_key,
            scenario_fingerprint=scenario.fingerprint(),
            tags=scenario.tags,
            groups=scenario.groups,
            oracle=scenario.oracle,
            operators=scenario.operators,
            methods=tuple(methods),
            suite_size=len(suite.cases),
            suite_fingerprint=suite.fingerprint(),
            mutants_total=run.total,
            mutants_truncated=truncated,
            compile_failures=generation.compile_failures,
            duplicates_dropped=generation.duplicates,
            type_incompatible=generation.type_incompatible,
            killed=len(run.killed),
            survived=len(run.survivors),
            statically_equivalent=len(run.statically_equivalent),
            dispatched=run.dispatched_count,
            kill_reasons={name: count
                          for name, count in run.kill_reason_counts().items()
                          if count},
            step_timeouts=run.step_timeouts,
            oracle_failures=oracle_failures,
            cases_executed=run.cases_executed,
            cases_skipped=run.cases_skipped,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _analyze(self, cls: type, suite: TestSuite, mutants: Sequence,
                 scenario: ScenarioConfig, spec: ClassSpec,
                 setup: Optional[Callable[[], None]],
                 type_model: Optional[object],
                 reference: SuiteResult,
                 coverage: Optional[CoverageMatrix]) -> MutationRun:
        oracle = resolve_oracle(scenario.oracle, spec)
        options = dict(
            oracle=oracle,
            step_budget=scenario.budgets.step_budget,
            setup=setup,
            reference=reference,
            coverage=coverage,
            cache=self._cache,
            prune=self._prune,
            static_triage=self._static_triage,
            triage_type_model=type_model,
            telemetry=self._telemetry,
        )
        if self._workers > 1 and mutants:
            from ..mutation.parallel import ParallelMutationAnalysis

            engine = ParallelMutationAnalysis(
                cls, suite, workers=self._workers,
                batch_size=self._batch_size, pool=self._pool, **options
            )
        else:
            engine = MutationAnalysis(cls, suite, **options)
        return engine.analyze(list(mutants))

    def run(self, filter_expression: str = "",
            shard: Optional[Tuple[int, int]] = None,
            max_scenarios: int = 0,
            progress: Optional[ProgressCallback] = None) -> SweepReport:
        """Execute the (filtered, sharded) registry and aggregate."""
        started = time.perf_counter()
        selected = self._registry.filtered(filter_expression)
        if shard is not None:
            selected = selected.shard(*shard)
        scenarios = list(selected)
        if max_scenarios and len(scenarios) > max_scenarios:
            scenarios = scenarios[:max_scenarios]
        results: List[ScenarioResult] = []
        with self._obs.span("sweep.run", scenarios=len(scenarios),
                            workers=self._workers):
            for position, scenario in enumerate(scenarios, start=1):
                result = self.run_scenario(scenario)
                results.append(result)
                self._obs.count("sweep.scenarios", 1)
                if result.oracle_failures:
                    self._obs.count("sweep.oracle_failures",
                                    result.oracle_failures)
                if result.error:
                    self._obs.count("sweep.errors", 1)
                if progress is not None:
                    progress(position, len(scenarios), scenario, result)
        counters = (dict(self._telemetry.counters())
                    if self._telemetry is not None else {})
        return SweepReport(
            registry_fingerprint=self._registry.fingerprint(),
            results=tuple(results),
            filter_expression=filter_expression,
            shard=(f"{shard[0]}/{shard[1]}" if shard is not None else ""),
            counters=counters,
            elapsed_seconds=time.perf_counter() - started,
        )
