"""The sweep runner: executing a scenario registry end to end.

:class:`SweepRunner` drives every scenario of a (filtered, sharded)
:class:`~repro.scenarios.registry.ScenarioRegistry` through the existing
mutation pipeline — resolve the component (catalog ref or seeded
generator), generate the suite, build the operator battery, run the
serial or parallel engine — and folds the outcomes into one
:class:`SweepReport`.

Cost sharing across the sweep, not per scenario:

* generated components are synthesized and materialized once per
  ``(family, seed)`` — the 5 operator-split scenarios of one recipe reuse
  the same class object;
* suites are generated once per ``(component, suite-config)``;
* the reference run and its coverage matrix are recorded once per
  ``(component, suite)`` and *seeded* into every engine that needs them —
  exactly how the parallel engine seeds its workers;
* all parallel scenarios draw from one warm
  :class:`~repro.mutation.parallel.WorkerPool`, and an optional
  :class:`~repro.mutation.cache.MutationOutcomeCache` spans the sweep.

Pipelining (``inflight > 1``): the runner keeps K scenarios in flight on
scheduler threads, so one scenario's prep work (synthesis, suite
generation, battery compilation, reference recording) overlaps another's
mutant execution instead of serialising behind it.  The worker pool is
multi-tenant — concurrent engines interleave their batches on the same
warm workers — and the sweep-wide memos become build-once cells, so
pipelining never duplicates shared prep.  Results are merged back in
registry order: the pipelined report is byte-identical to the sequential
runner's.

Scenario warm cache: with a cache attached, each finished (non-failed)
scenario's result projection is persisted keyed by the scenario content
fingerprint, the component *source* hash, the suite fingerprint and the
verdict-bearing engine flags.  A warm sweep of an unchanged registry
replays every scenario from the store — zero mutants executed, zero
reference passes — and still renders the byte-identical deterministic
report.  Worker count, batch size and inflight depth are deliberately
not part of the key: engines are serial-equivalent, so a result computed
at any parallelism replays everywhere.

Determinism: :meth:`SweepReport.to_dict` with ``timings=False`` is the
*deterministic projection* — same registry, same seeds, same flags ⇒
byte-identical JSON.  Wall-clock, cache counters and the executed/skipped
case tallies (which legitimately vary warm-vs-cold and pruned-vs-not) are
confined to the ``timings=True`` rendering, mirroring
:meth:`~repro.mutation.analysis.MutationRun.same_results`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..components import component_by_name, setup_for, type_model_for
from ..core.errors import RunCancelled, ScenarioError
from ..core.fingerprint import canonical, sha256_hex
from ..generator.driver import DriverGenerator
from ..generator.suite import TestSuite
from ..harness.oracles import (
    CompositeOracle,
    assertions_only_oracle,
    experiment_oracle,
    log_level_oracle,
    output_only_oracle,
    paper_oracle,
)
from ..harness.outcomes import SuiteResult, Verdict
from ..mutation.analysis import MutationAnalysis, MutationRun
from ..mutation.cache import CACHE_KEY_VERSION, MutationOutcomeCache
from ..mutation.coverage import CoverageMatrix
from ..mutation.generate import build_battery
from ..obs import Telemetry, coalesce
from ..obs.summary import aggregate_counters
from ..tspec.model import ClassSpec
from .genspec import GeneratorSpec, synthesize
from .materialize import PathLike, materialize
from .registry import ScenarioConfig, ScenarioRegistry, default_methods

#: Called after each scenario: ``(position, total, scenario, result)``.
ProgressCallback = Callable[[int, int, ScenarioConfig, "ScenarioResult"], None]

#: Schema tag of the report JSON (bump on incompatible shape changes).
REPORT_SCHEMA = "repro-sweep-report/1"


def resolve_oracle(name: str, spec: ClassSpec) -> CompositeOracle:
    """The oracle a registry entry names, bound to the component's spec."""
    if name == "experiment":
        return experiment_oracle(spec)
    if name == "paper":
        return paper_oracle()
    if name == "assertions":
        return assertions_only_oracle()
    if name == "output":
        return output_only_oracle()
    if name == "log":
        return log_level_oracle()
    raise ScenarioError(f"unknown oracle {name!r}")


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's aggregated outcome."""

    ident: str
    component: str
    scenario_fingerprint: str
    tags: Tuple[str, ...] = ()
    groups: Tuple[str, ...] = ()
    oracle: str = ""
    operators: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    suite_size: int = 0
    suite_fingerprint: str = ""
    mutants_total: int = 0
    mutants_truncated: bool = False
    compile_failures: int = 0
    duplicates_dropped: int = 0
    type_incompatible: int = 0
    killed: int = 0
    survived: int = 0
    statically_equivalent: int = 0
    dispatched: int = 0
    kill_reasons: Mapping[str, int] = field(default_factory=dict)
    step_timeouts: int = 0
    #: Reference-run cases whose verdict was not PASS: the sweep's gate —
    #: an unmutated component must run its BIT suite green.
    oracle_failures: int = 0
    cases_executed: int = 0
    cases_skipped: int = 0
    elapsed_seconds: float = 0.0
    #: Non-empty when the scenario failed outright (synthesis, battery or
    #: engine error) — the sweep records the failure and keeps going.
    error: str = ""

    @property
    def failed(self) -> bool:
        return bool(self.error) or self.oracle_failures > 0

    @property
    def mutation_score(self) -> float:
        if not self.mutants_total:
            return 0.0
        return self.killed / self.mutants_total

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """JSON-ready mapping; ``timings=False`` is the deterministic
        projection (verdict-bearing fields only — the per-result analogue
        of :meth:`~repro.mutation.analysis.MutationRun.same_results`)."""
        payload: Dict[str, Any] = {
            "ident": self.ident,
            "component": self.component,
            "scenario_fingerprint": self.scenario_fingerprint,
            "tags": list(self.tags),
            "groups": list(self.groups),
            "oracle": self.oracle,
            "operators": list(self.operators),
            "methods": list(self.methods),
            "suite_size": self.suite_size,
            "suite_fingerprint": self.suite_fingerprint,
            "mutants_total": self.mutants_total,
            "mutants_truncated": self.mutants_truncated,
            "compile_failures": self.compile_failures,
            "duplicates_dropped": self.duplicates_dropped,
            "type_incompatible": self.type_incompatible,
            "killed": self.killed,
            "survived": self.survived,
            "statically_equivalent": self.statically_equivalent,
            "kill_reasons": dict(sorted(self.kill_reasons.items())),
            "mutation_score": round(self.mutation_score, 6),
            "step_timeouts": self.step_timeouts,
            "oracle_failures": self.oracle_failures,
            "error": self.error,
        }
        if timings:
            payload.update({
                "dispatched": self.dispatched,
                "cases_executed": self.cases_executed,
                "cases_skipped": self.cases_skipped,
                "elapsed_seconds": round(self.elapsed_seconds, 6),
            })
        return payload


def _result_from_mapping(mapping: Mapping[str, Any]) -> ScenarioResult:
    return ScenarioResult(
        ident=str(mapping["ident"]),
        component=str(mapping.get("component", "")),
        scenario_fingerprint=str(mapping.get("scenario_fingerprint", "")),
        tags=tuple(mapping.get("tags", ())),
        groups=tuple(mapping.get("groups", ())),
        oracle=str(mapping.get("oracle", "")),
        operators=tuple(mapping.get("operators", ())),
        methods=tuple(mapping.get("methods", ())),
        suite_size=int(mapping.get("suite_size", 0)),
        suite_fingerprint=str(mapping.get("suite_fingerprint", "")),
        mutants_total=int(mapping.get("mutants_total", 0)),
        mutants_truncated=bool(mapping.get("mutants_truncated", False)),
        compile_failures=int(mapping.get("compile_failures", 0)),
        duplicates_dropped=int(mapping.get("duplicates_dropped", 0)),
        type_incompatible=int(mapping.get("type_incompatible", 0)),
        killed=int(mapping.get("killed", 0)),
        survived=int(mapping.get("survived", 0)),
        statically_equivalent=int(mapping.get("statically_equivalent", 0)),
        dispatched=int(mapping.get("dispatched", 0)),
        kill_reasons=dict(mapping.get("kill_reasons", {})),
        step_timeouts=int(mapping.get("step_timeouts", 0)),
        oracle_failures=int(mapping.get("oracle_failures", 0)),
        cases_executed=int(mapping.get("cases_executed", 0)),
        cases_skipped=int(mapping.get("cases_skipped", 0)),
        elapsed_seconds=float(mapping.get("elapsed_seconds", 0.0)),
        error=str(mapping.get("error", "")),
    )


@dataclass(frozen=True)
class SweepReport:
    """One sweep's (or one shard's) aggregated report."""

    registry_fingerprint: str
    results: Tuple[ScenarioResult, ...]
    filter_expression: str = ""
    shard: str = ""
    counters: Mapping[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    # -- gates ----------------------------------------------------------

    @property
    def total_oracle_failures(self) -> int:
        return sum(result.oracle_failures for result in self.results)

    @property
    def errors(self) -> Tuple[ScenarioResult, ...]:
        return tuple(result for result in self.results if result.error)

    @property
    def passed(self) -> bool:
        """The CI gate: every scenario ran, every unmutated reference run
        was oracle-green."""
        return not self.errors and self.total_oracle_failures == 0

    # -- aggregates -----------------------------------------------------

    @property
    def mutants_total(self) -> int:
        return sum(result.mutants_total for result in self.results)

    @property
    def mutants_killed(self) -> int:
        return sum(result.killed for result in self.results)

    def kill_reason_totals(self) -> Dict[str, int]:
        return aggregate_counters(
            result.kill_reasons for result in self.results
        )

    # -- rendering ------------------------------------------------------

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """JSON-ready mapping; results are ident-sorted so shard order and
        registry order never leak into the bytes.  ``timings=False`` drops
        wall-clock, telemetry counters and the executed-case tallies —
        the projection the determinism and shard-merge tests compare."""
        ordered = sorted(self.results, key=lambda result: result.ident)
        payload: Dict[str, Any] = {
            "schema": REPORT_SCHEMA,
            "registry_fingerprint": self.registry_fingerprint,
            "filter": self.filter_expression,
            "shard": self.shard,
            "scenarios": len(ordered),
            "mutants_total": self.mutants_total,
            "mutants_killed": self.mutants_killed,
            "kill_reasons": self.kill_reason_totals(),
            "oracle_failures": self.total_oracle_failures,
            "scenario_errors": len(self.errors),
            "results": [result.to_dict(timings=timings)
                        for result in ordered],
        }
        if timings:
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 6)
            payload["counters"] = dict(sorted(self.counters.items()))
        return payload

    def to_json(self, timings: bool = True) -> str:
        return json.dumps(
            self.to_dict(timings=timings), indent=2, sort_keys=True
        ) + "\n"

    def render_text(self) -> str:
        """Human-readable sweep summary (one line per scenario)."""
        lines = [
            f"sweep: {len(self.results)} scenarios, "
            f"{self.mutants_killed}/{self.mutants_total} mutants killed, "
            f"{self.total_oracle_failures} oracle failures, "
            f"{len(self.errors)} errors"
            + (f"  [shard {self.shard}]" if self.shard else ""),
            f"registry: {self.registry_fingerprint[:16]}"
            + (f"  filter: {self.filter_expression}"
               if self.filter_expression else ""),
        ]
        header = (f"  {'scenario':<34} {'component':<22} "
                  f"{'suite':>5} {'killed':>12} {'score':>6}  flags")
        lines.append(header)
        for result in sorted(self.results, key=lambda item: item.ident):
            if result.error:
                lines.append(
                    f"  {result.ident:<34} {result.component:<22} "
                    f"ERROR: {result.error}"
                )
                continue
            flags = []
            if result.oracle_failures:
                flags.append(f"oracle-failures={result.oracle_failures}")
            if result.mutants_truncated:
                flags.append("truncated")
            if result.statically_equivalent:
                flags.append(f"equiv={result.statically_equivalent}")
            lines.append(
                f"  {result.ident:<34} {result.component:<22} "
                f"{result.suite_size:>5} "
                f"{result.killed:>5}/{result.mutants_total:<6} "
                f"{result.mutation_score:>6.2f}  {' '.join(flags)}".rstrip()
            )
        return "\n".join(lines)


def report_from_mapping(mapping: Mapping[str, Any]) -> SweepReport:
    """Reconstruct a report from its parsed JSON (for shard merging)."""
    if mapping.get("schema") != REPORT_SCHEMA:
        raise ScenarioError(
            f"not a sweep report (schema {mapping.get('schema')!r}, "
            f"expected {REPORT_SCHEMA!r})"
        )
    return SweepReport(
        registry_fingerprint=str(mapping.get("registry_fingerprint", "")),
        results=tuple(
            _result_from_mapping(item)
            for item in mapping.get("results", ())
        ),
        filter_expression=str(mapping.get("filter", "")),
        shard=str(mapping.get("shard", "")),
        counters=dict(mapping.get("counters", {})),
        elapsed_seconds=float(mapping.get("elapsed_seconds", 0.0)),
    )


def merge_reports(reports: Sequence[SweepReport]) -> SweepReport:
    """Merge shard reports into one sweep report.

    All parts must come from the same registry (fingerprint equality) and
    no scenario may appear twice — disjoint shards guarantee both, and
    violating either is a configuration error worth failing loudly on.
    """
    if not reports:
        raise ScenarioError("nothing to merge: no reports given")
    fingerprints = {report.registry_fingerprint for report in reports}
    if len(fingerprints) != 1:
        raise ScenarioError(
            "cannot merge reports from different registries: "
            + ", ".join(sorted(item[:16] for item in fingerprints))
        )
    filters = {report.filter_expression for report in reports}
    seen: Dict[str, str] = {}
    merged: List[ScenarioResult] = []
    for report in reports:
        for result in report.results:
            if result.ident in seen:
                raise ScenarioError(
                    f"scenario {result.ident!r} appears in more than one "
                    f"report (shards must be disjoint)"
                )
            seen[result.ident] = report.shard
            merged.append(result)
    return SweepReport(
        registry_fingerprint=reports[0].registry_fingerprint,
        results=tuple(sorted(merged, key=lambda result: result.ident)),
        filter_expression=(filters.pop() if len(filters) == 1 else ""),
        shard="",
        counters=aggregate_counters(report.counters for report in reports),
        elapsed_seconds=sum(report.elapsed_seconds for report in reports),
    )


class SweepRunner:
    """Executes scenarios, sharing warm state across the whole sweep."""

    def __init__(self, registry: ScenarioRegistry,
                 workers: int = 1,
                 workspace: Optional[PathLike] = None,
                 cache: Optional[MutationOutcomeCache] = None,
                 batch_size: Optional[int] = None,
                 prune: bool = True,
                 static_triage: bool = True,
                 telemetry: Optional[Telemetry] = None,
                 pool: Optional[object] = None,
                 inflight: int = 1):
        """``workers > 1`` routes every non-empty battery through the
        parallel engine; ``pool`` overrides its worker pool (default: the
        process-wide shared pool, warm across scenarios).  ``inflight > 1``
        pipelines that many scenarios concurrently onto the pool (see the
        module docstring).  ``cache``, ``prune``, ``static_triage``,
        ``batch_size`` and ``telemetry`` are passed through to the engines
        unchanged."""
        if workers < 1:
            raise ScenarioError("workers must be >= 1")
        if inflight < 1:
            raise ScenarioError("inflight must be >= 1")
        self._registry = registry
        self._workers = workers
        self._workspace = workspace
        self._cache = cache
        self._batch_size = batch_size
        self._prune = prune
        self._static_triage = static_triage
        self._telemetry = telemetry
        self._obs = coalesce(telemetry)
        self._pool = pool
        self._inflight = inflight
        # Sweep-wide memos (see module docstring).  With pipelining the
        # plain dicts become build-once cells: the first scenario thread
        # to ask for a key builds it, concurrent askers block on the
        # builder's event instead of duplicating the work.
        self._memo_lock = threading.Lock()
        self._memo_building: Dict[Tuple[int, Any], threading.Event] = {}
        self._classes: Dict[Tuple[str, int], type] = {}
        self._suites: Dict[Tuple[str, Tuple[int, int, int, int]],
                           TestSuite] = {}
        self._references: Dict[Tuple[str, str],
                               Tuple[SuiteResult,
                                     Optional[CoverageMatrix]]] = {}
        # Sweep-wide cooperative cancellation (Ctrl-C, service shutdown).
        # Once set, scheduler threads stop claiming scenarios, engines
        # unwind with RunCancelled, and memo waiters stop blocking — so
        # ``run()`` returns promptly with the rest marked cancelled.
        self._cancel = threading.Event()

    def request_cancel(self) -> None:
        """Cancel the sweep cooperatively (thread-safe, idempotent).

        In-flight scenarios drain (their engines raise
        :class:`~repro.core.errors.RunCancelled`, recorded as error
        rows); scenarios not yet started are reported as cancelled.
        """
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def _memoized(self, store: Dict, key: Any,
                  build: Callable[[], Any],
                  obs: Optional[Telemetry] = None,
                  cancel: Optional[threading.Event] = None) -> Any:
        """``store[key]``, built at most once sweep-wide.

        A waiting thread's stall is the *prep wait* — the pipelined
        sweep's analogue of a cache stampede — and is surfaced as the
        ``sweep.prep_wait`` / ``sweep.prep_wait_ms`` counters.  When the
        builder raises, its waiters retry (one of them becomes the next
        builder), so a transient failure never wedges the cell.  Waiters
        poll ``cancel``: a cancelled sweep must not leave a scheduler
        thread parked forever behind a builder that is itself blocked.
        """
        obs = obs if obs is not None else self._obs
        cancel = cancel if cancel is not None else self._cancel
        while True:
            with self._memo_lock:
                if key in store:
                    return store[key]
                cell = (id(store), key)
                event = self._memo_building.get(cell)
                if event is None:
                    event = threading.Event()
                    self._memo_building[cell] = event
                    building = True
                else:
                    building = False
            if building:
                try:
                    value = build()
                except BaseException:
                    with self._memo_lock:
                        del self._memo_building[cell]
                    event.set()
                    raise
                with self._memo_lock:
                    store[key] = value
                    del self._memo_building[cell]
                event.set()
                return value
            waited = time.perf_counter()
            while not event.wait(timeout=0.05):
                if cancel.is_set():
                    raise RunCancelled(
                        "cancelled while waiting for shared prep"
                    )
            obs.count("sweep.prep_wait")
            obs.count(
                "sweep.prep_wait_ms",
                int((time.perf_counter() - waited) * 1000),
            )

    # -- component / suite resolution -----------------------------------

    def _resolve_component(self, scenario: ScenarioConfig,
                           telemetry: Optional[Telemetry],
                           obs: Telemetry,
                           cancel: threading.Event
                           ) -> Tuple[type, ClassSpec,
                                      Optional[Callable[[], None]],
                                      Optional[object]]:
        """The scenario's class, spec, setup hook and triage type model."""
        selector = scenario.component
        if selector.is_generated:
            def build() -> type:
                with obs.span("sweep.materialize",
                              family=selector.family,
                              seed=selector.seed):
                    component = synthesize(
                        GeneratorSpec(selector.family, selector.seed)
                    )
                    return materialize(component, self._workspace)

            cls = self._memoized(
                self._classes, (selector.family, selector.seed), build,
                obs=obs, cancel=cancel,
            )
            return cls, cls.__tspec__, None, None
        cls = component_by_name(selector.ref)
        return (cls, cls.__tspec__,
                setup_for(selector.ref), type_model_for(selector.ref))

    def _suite_for(self, component_key: str,
                   scenario: ScenarioConfig, spec: ClassSpec,
                   obs: Telemetry,
                   cancel: threading.Event) -> TestSuite:
        config = scenario.suite
        key = (component_key, (config.seed, config.edge_bound,
                               config.max_transactions, config.max_cases))

        def build() -> TestSuite:
            suite = DriverGenerator(
                spec,
                seed=config.seed,
                edge_bound=config.edge_bound,
                max_transactions=config.max_transactions,
            ).generate()
            if config.max_cases and len(suite.cases) > config.max_cases:
                suite = dc_replace(
                    suite, cases=suite.cases[:config.max_cases]
                )
            return suite

        return self._memoized(self._suites, key, build,
                              obs=obs, cancel=cancel)

    def _reference_for(self, component_key: str, cls: type,
                       suite: TestSuite,
                       setup: Optional[Callable[[], None]],
                       telemetry: Optional[Telemetry],
                       obs: Telemetry,
                       cancel: threading.Event
                       ) -> Tuple[SuiteResult, Optional[CoverageMatrix]]:
        """The (reference run, coverage matrix) pair, recorded once per
        (component, suite) and seeded into every engine downstream."""
        def build() -> Tuple[SuiteResult, Optional[CoverageMatrix]]:
            recorder = MutationAnalysis(
                cls, suite, setup=setup, prune=self._prune,
                telemetry=telemetry,
            )
            return (recorder.reference_results(),
                    recorder.coverage_matrix())

        return self._memoized(
            self._references, (component_key, suite.fingerprint()), build,
            obs=obs, cancel=cancel,
        )

    # -- execution ------------------------------------------------------

    def run_scenario(self, scenario: ScenarioConfig,
                     telemetry: Optional[Telemetry] = None,
                     cancel: Optional[threading.Event] = None,
                     rlimits: Optional[object] = None) -> ScenarioResult:
        """Execute one scenario; never raises — failures land in
        ``result.error`` so a sweep survives a bad entry.

        *Any* ``Exception`` is absorbed, not just :class:`ReproError`:
        a scenario that dies of an unforeseen bug (a bad generated
        component tripping an assertion, say) must cost exactly one
        ``error`` row and one ``sweep.errors`` tick — never the other
        K-1 scenarios in flight beside it.

        The per-call overrides are service mode's job knobs: ``telemetry``
        records this scenario's spans/events on a job-scoped session
        (instead of the sweep-wide one), ``cancel`` substitutes a
        job-scoped cancel event for the sweep's, and ``rlimits`` (a
        :class:`~repro.mutation.parallel.BatchLimits`) ships per-batch
        CPU/memory rlimits to the workers.  Defaults preserve the batch
        sweep behaviour exactly."""
        started = time.perf_counter()
        effective_telemetry = (telemetry if telemetry is not None
                               else self._telemetry)
        obs = (coalesce(effective_telemetry) if telemetry is not None
               else self._obs)
        cancel_event = cancel if cancel is not None else self._cancel
        try:
            return self._run_scenario(scenario, started,
                                      effective_telemetry, obs,
                                      cancel_event, rlimits)
        except Exception as error:
            return ScenarioResult(
                ident=scenario.ident,
                component=scenario.component.describe(),
                scenario_fingerprint=scenario.fingerprint(),
                tags=scenario.tags,
                groups=scenario.groups,
                oracle=scenario.oracle,
                operators=scenario.operators,
                elapsed_seconds=time.perf_counter() - started,
                error=f"{type(error).__name__}: {error}",
            )

    def _cancelled_result(self, scenario: ScenarioConfig) -> ScenarioResult:
        """The row a scenario gets when the sweep stops before running it."""
        return ScenarioResult(
            ident=scenario.ident,
            component=scenario.component.describe(),
            scenario_fingerprint=scenario.fingerprint(),
            tags=scenario.tags,
            groups=scenario.groups,
            oracle=scenario.oracle,
            operators=scenario.operators,
            error="RunCancelled: sweep cancelled before this scenario ran",
        )

    def _scenario_key(self, scenario: ScenarioConfig, cls: type,
                      suite: TestSuite) -> Optional[str]:
        """The scenario warm-cache address, or ``None`` without a cache.

        Covers everything that can change the deterministic projection:
        the scenario content fingerprint (operators, oracle, budgets,
        methods, suite config), the component *source* hash (via
        :func:`canonical`, so editing a component or the generator
        invalidates its scenarios), the realized suite fingerprint, and
        the verdict-bearing engine flags.  Deliberately excluded:
        ``workers``, ``batch_size``, ``inflight`` — engines are
        serial-equivalent, so one stored result replays at any
        parallelism.
        """
        if self._cache is None:
            return None
        return sha256_hex(
            "scenario-result",
            f"v{CACHE_KEY_VERSION}",
            scenario.fingerprint(),
            canonical(cls),
            suite.fingerprint(),
            canonical(self._prune),
            canonical(self._static_triage),
        )

    def _run_scenario(self, scenario: ScenarioConfig,
                      started: float,
                      telemetry: Optional[Telemetry],
                      obs: Telemetry,
                      cancel: threading.Event,
                      rlimits: Optional[object]) -> ScenarioResult:
        if cancel.is_set():
            raise RunCancelled("cancelled before the scenario started")
        cls, spec, setup, type_model = self._resolve_component(
            scenario, telemetry, obs, cancel
        )
        component_key = scenario.component.describe()
        methods = scenario.methods or default_methods(spec)
        suite = self._suite_for(component_key, scenario, spec, obs, cancel)
        cache_key = self._scenario_key(scenario, cls, suite)
        if cache_key is not None:
            stored = self._cache.lookup_scenario(cache_key)
            if stored is not None:
                obs.count("sweep.scenario_cache_hits")
                return dc_replace(
                    _result_from_mapping(stored),
                    elapsed_seconds=time.perf_counter() - started,
                )
            obs.count("sweep.scenario_cache_misses")
        mutants, generation, truncated = build_battery(
            cls, methods,
            operator_names=scenario.operators,
            type_model=type_model,
            max_mutants=scenario.budgets.max_mutants,
            telemetry=telemetry,
        )
        reference, coverage = self._reference_for(
            component_key, cls, suite, setup, telemetry, obs, cancel
        )
        run = self._analyze(
            cls, suite, mutants, scenario, spec, setup, type_model,
            reference, coverage, telemetry, cancel, rlimits,
        )
        oracle_failures = sum(
            1 for result in run.reference.results
            if result.verdict is not Verdict.PASS
        )
        result = ScenarioResult(
            ident=scenario.ident,
            component=component_key,
            scenario_fingerprint=scenario.fingerprint(),
            tags=scenario.tags,
            groups=scenario.groups,
            oracle=scenario.oracle,
            operators=scenario.operators,
            methods=tuple(methods),
            suite_size=len(suite.cases),
            suite_fingerprint=suite.fingerprint(),
            mutants_total=run.total,
            mutants_truncated=truncated,
            compile_failures=generation.compile_failures,
            duplicates_dropped=generation.duplicates,
            type_incompatible=generation.type_incompatible,
            killed=len(run.killed),
            survived=len(run.survivors),
            statically_equivalent=len(run.statically_equivalent),
            dispatched=run.dispatched_count,
            kill_reasons={name: count
                          for name, count in run.kill_reason_counts().items()
                          if count},
            step_timeouts=run.step_timeouts,
            oracle_failures=oracle_failures,
            cases_executed=run.cases_executed,
            cases_skipped=run.cases_skipped,
            elapsed_seconds=time.perf_counter() - started,
        )
        if cache_key is not None and not result.failed:
            self._cache.store_scenario(
                cache_key, result.to_dict(timings=True)
            )
        return result

    def _analyze(self, cls: type, suite: TestSuite, mutants: Sequence,
                 scenario: ScenarioConfig, spec: ClassSpec,
                 setup: Optional[Callable[[], None]],
                 type_model: Optional[object],
                 reference: SuiteResult,
                 coverage: Optional[CoverageMatrix],
                 telemetry: Optional[Telemetry],
                 cancel: threading.Event,
                 rlimits: Optional[object]) -> MutationRun:
        oracle = resolve_oracle(scenario.oracle, spec)
        options = dict(
            oracle=oracle,
            step_budget=scenario.budgets.step_budget,
            setup=setup,
            reference=reference,
            coverage=coverage,
            cache=self._cache,
            prune=self._prune,
            static_triage=self._static_triage,
            triage_type_model=type_model,
            telemetry=telemetry,
            cancel_event=cancel,
        )
        if self._workers > 1 and mutants:
            from ..mutation.parallel import ParallelMutationAnalysis

            engine = ParallelMutationAnalysis(
                cls, suite, workers=self._workers,
                batch_size=self._batch_size, pool=self._pool,
                rlimits=rlimits, **options
            )
        else:
            # Serial engine: CPU/memory rlimits are worker-side knobs and
            # do not apply in-process; the cancel event still does.
            engine = MutationAnalysis(cls, suite, **options)
        return engine.analyze(list(mutants))

    def _tally(self, result: ScenarioResult) -> None:
        self._obs.count("sweep.scenarios", 1)
        if result.oracle_failures:
            self._obs.count("sweep.oracle_failures",
                            result.oracle_failures)
        if result.error:
            self._obs.count("sweep.errors", 1)

    def _run_sequential(self, scenarios: Sequence[ScenarioConfig],
                        progress: Optional[ProgressCallback]
                        ) -> List[ScenarioResult]:
        results: List[ScenarioResult] = []
        for position, scenario in enumerate(scenarios, start=1):
            if self._cancel.is_set():
                result = self._cancelled_result(scenario)
            else:
                try:
                    result = self.run_scenario(scenario)
                except KeyboardInterrupt:
                    # Ctrl-C mid-scenario: cancel the sweep (which also
                    # unhooks any run still registered on the pool — the
                    # engine's cancel event is ours) and record the
                    # interrupted scenario as cancelled.
                    self._cancel.set()
                    result = self._cancelled_result(scenario)
            results.append(result)
            self._tally(result)
            if progress is not None:
                progress(position, len(scenarios), scenario, result)
        return results

    def _run_pipelined(self, scenarios: Sequence[ScenarioConfig],
                       progress: Optional[ProgressCallback]
                       ) -> List[ScenarioResult]:
        """K scheduler threads pull scenarios off one shared index.

        While one scenario blocks in the (multi-tenant) worker pool, its
        neighbours run prep — synthesis, suite generation, battery
        compilation, reference recording — so the pool never starves
        behind single-threaded prep.  Results land by registry index,
        which makes the report byte-identical to the sequential
        runner's; ``progress`` fires in completion order under a lock
        (positions stay dense 1..N, idents may interleave).

        Ctrl-C lands on the main thread (blocked in ``join``): it sets
        the sweep cancel event, which drains the in-flight scenarios —
        engines unwind with ``RunCancelled`` within a poll interval, memo
        waiters stop blocking, schedulers stop claiming — so the re-join
        returns promptly and every unstarted scenario is reported
        cancelled instead of hanging the process.
        """
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        state = threading.Lock()
        cursor = {"next": 0, "done": 0, "active": 0}

        def schedule() -> None:
            while True:
                if self._cancel.is_set():
                    return
                with state:
                    index = cursor["next"]
                    if index >= len(scenarios):
                        return
                    cursor["next"] = index + 1
                    cursor["active"] += 1
                    self._obs.count_max("sweep.inflight",
                                        cursor["active"])
                scenario = scenarios[index]
                try:
                    result = self.run_scenario(scenario)
                finally:
                    with state:
                        cursor["active"] -= 1
                with state:
                    results[index] = result
                    cursor["done"] += 1
                    self._tally(result)
                    if progress is not None:
                        progress(cursor["done"], len(scenarios),
                                 scenario, result)

        threads = [
            threading.Thread(target=schedule,
                             name=f"repro-sweep-{number}", daemon=True)
            for number in range(min(self._inflight, len(scenarios)))
        ]
        for thread in threads:
            thread.start()
        try:
            for thread in threads:
                thread.join()
        except KeyboardInterrupt:
            # Ctrl-C: cancel cooperatively, then join again — the drain
            # is bounded by one engine poll interval per in-flight
            # scenario, not by the rest of the sweep.  The report comes
            # back with the rest marked cancelled (and the gate failing)
            # instead of the join hanging forever.
            self._cancel.set()
            for thread in threads:
                thread.join()
        finally:
            if self._cancel.is_set():
                with state:
                    for index, scenario in enumerate(scenarios):
                        if results[index] is None:
                            results[index] = self._cancelled_result(scenario)
                            self._tally(results[index])
        return [result for result in results if result is not None]

    def run(self, filter_expression: str = "",
            shard: Optional[Tuple[int, int]] = None,
            max_scenarios: int = 0,
            progress: Optional[ProgressCallback] = None) -> SweepReport:
        """Execute the (filtered, sharded) registry and aggregate."""
        started = time.perf_counter()
        selected = self._registry.filtered(filter_expression)
        if shard is not None:
            selected = selected.shard(*shard)
        scenarios = list(selected)
        if max_scenarios and len(scenarios) > max_scenarios:
            scenarios = scenarios[:max_scenarios]
        with self._obs.span("sweep.run", scenarios=len(scenarios),
                            workers=self._workers,
                            inflight=self._inflight):
            if self._inflight > 1 and len(scenarios) > 1:
                results = self._run_pipelined(scenarios, progress)
            else:
                results = self._run_sequential(scenarios, progress)
        counters = (dict(self._telemetry.counters())
                    if self._telemetry is not None else {})
        return SweepReport(
            registry_fingerprint=self._registry.fingerprint(),
            results=tuple(results),
            filter_expression=filter_expression,
            shard=(f"{shard[0]}/{shard[1]}" if shard is not None else ""),
            counters=counters,
            elapsed_seconds=time.perf_counter() - started,
        )
