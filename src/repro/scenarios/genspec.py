"""Seeded synthesis of self-testable components.

A :class:`GeneratorSpec` is the two-field recipe — ``(family, seed)`` —
from which :func:`synthesize` deterministically produces a
:class:`GeneratedComponent`: real Python module source with BIT methods,
contracts and a reference-model shadow, plus the validated
:class:`~repro.tspec.model.ClassSpec` embedded as t-spec text.

Soundness is checked at synthesis time, not trusted:

* the drawn spec passes :func:`~repro.tspec.validate.validate` (the
  builder runs it);
* the embedded t-spec text round-trips through the writer→parser pipeline
  to a spec ``normalized()``-equal to the drawn one, and the writer is a
  fixed point on the parsed result — so the generated module's import-time
  ``parse_tspec`` provably reattaches the same spec;
* the module source compiles.

Everything downstream (materialization, suite generation, mutation) then
treats the generated component exactly like a hand-written one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import GenerationError
from ..core.fingerprint import canonical, sha256_hex
from ..core.rng import ReproRandom
from ..tspec.model import ClassSpec
from ..tspec.parser import parse_tspec
from ..tspec.writer import write_tspec
from .families import FAMILIES, FAMILY_NAMES

_MODULE_TEMPLATE = '''"""Generated self-testable component ({family} family, seed {seed}).

Synthesized by ``repro.scenarios.genspec`` — do not edit.  ``TSPEC_TEXT``
is the t-spec writer's rendering of the component's drawn ClassSpec and is
parsed back at import time to attach ``__tspec__``, so the embedded spec
rides the writer→parser round-trip on every import.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bit.assertions import check_postcondition, check_precondition
from repro.bit.builtintest import BuiltInTest
from repro.scenarios.runtime import GeneratedComponentMeta
from repro.tspec.parser import parse_tspec

TSPEC_TEXT = """\\
{tspec_text}"""


{class_source}

{class_name}.__tspec__ = parse_tspec(TSPEC_TEXT)
'''


@dataclass(frozen=True)
class GeneratorSpec:
    """The recipe for one generated component: a family and a seed."""

    family: str
    seed: int

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise GenerationError(
                f"unknown component family {self.family!r} "
                f"(known: {', '.join(FAMILY_NAMES)})"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise GenerationError(
                f"generator seed must be a non-negative int, "
                f"got {self.seed!r}"
            )

    @property
    def class_name(self) -> str:
        return f"{FAMILIES[self.family].class_prefix}S{self.seed}"

    def fingerprint(self) -> str:
        return sha256_hex("genspec", canonical(self))


@dataclass(frozen=True)
class GeneratedComponent:
    """The synthesized artefact: module source plus its validated spec."""

    family: str
    seed: int
    class_name: str
    module_name: str
    source: str
    spec: ClassSpec

    def fingerprint(self) -> str:
        """Content identity: family, seed and the exact module source."""
        return sha256_hex(
            "generated-component", self.family, str(self.seed), self.source
        )


def synthesize(genspec: GeneratorSpec) -> GeneratedComponent:
    """Deterministically synthesize the component a recipe describes.

    Raises :class:`~repro.core.errors.GenerationError` when any soundness
    check fails — a generator bug must never leak a component whose
    embedded spec would parse differently than it was drawn.
    """
    blueprint = FAMILIES[genspec.family]
    rng = ReproRandom(genspec.seed).fork(_family_salt(genspec.family))
    class_name = genspec.class_name
    spec, class_source = blueprint.synthesize(rng, class_name)
    if spec.name != class_name:
        raise GenerationError(
            f"family {genspec.family!r} drew spec named {spec.name!r} "
            f"for class {class_name!r}"
        )
    tspec_text = write_tspec(spec)
    if '"""' in tspec_text or "\\" in tspec_text:
        raise GenerationError(
            f"t-spec text of {class_name} cannot be embedded verbatim"
        )
    parsed = parse_tspec(tspec_text)
    if parsed.normalized() != spec.normalized():
        raise GenerationError(
            f"t-spec round-trip diverged for generated {class_name}"
        )
    if write_tspec(parsed) != tspec_text:
        raise GenerationError(
            f"t-spec writer is not a fixed point on generated {class_name}"
        )
    source = _MODULE_TEMPLATE.format(
        family=genspec.family,
        seed=genspec.seed,
        tspec_text=tspec_text,
        class_source=class_source.rstrip("\n"),
        class_name=class_name,
    )
    try:
        compile(source, f"<generated {class_name}>", "exec")
    except SyntaxError as error:
        raise GenerationError(
            f"generated module for {class_name} does not compile: {error}"
        ) from error
    digest = sha256_hex("generated-module", source)[:10]
    module_name = f"repro_scen_{genspec.family}_s{genspec.seed}_{digest}"
    return GeneratedComponent(
        family=genspec.family,
        seed=genspec.seed,
        class_name=class_name,
        module_name=module_name,
        source=source,
        spec=parsed,
    )


def _family_salt(family: str) -> int:
    """A small deterministic per-family RNG salt (no ``hash()`` — it is
    randomized per process)."""
    return sum(ord(char) for char in family)
