"""The scenario registry: declarative (component, suite, operator) configs.

A :class:`ScenarioConfig` names everything one mutation-analysis scenario
needs — the component (a catalog *ref* or a generator recipe), the suite
parameters, the operator subset, the oracle, execution budgets, and the
expected fault-class tags — as pure data.  A :class:`ScenarioRegistry` is
an ordered collection of them with a content fingerprint
(:mod:`repro.core.fingerprint`), filtering, and stable ``k/n`` sharding.

Registries come from three sources, all landing in the same types:

* :func:`builtin_registry` — the shipped corpus: every generated family ×
  seed × operator (the ``smoke``/``ci`` groups), the paper's two subjects,
  and one entry per discovered catalog component (the ``components``
  group, pinned by test to cover :func:`repro.components
  .discover_components` exactly);
* :func:`load_registry` — per-scenario JSON config files in a directory
  (the CrashRepair ``benchmark/configurations`` layout);
* :func:`registry_from_mappings` — parsed mappings, for tests and tools.

Validation is collected, not fail-fast: :meth:`ScenarioRegistry.validate`
returns every problem, and the loaders raise a single
:class:`~repro.core.errors.ScenarioError` listing all of them.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ScenarioError
from ..core.fingerprint import canonical, sha256_hex
from ..mutation.operators import OPERATOR_NAMES
from ..mutation.sandbox import DEFAULT_STEP_BUDGET
from ..tspec.model import ClassSpec, MethodCategory
from .families import FAMILIES, FAMILY_NAMES
from .taxonomy import validate_tags

#: Oracle configurations a scenario may name (resolved in
#: :mod:`repro.scenarios.sweep`).
ORACLE_NAMES: Tuple[str, ...] = (
    "experiment", "paper", "assertions", "output", "log",
)

#: Default suite seed — the paper's experiment seed, so registry entries
#: that don't say otherwise reproduce across machines.
DEFAULT_SUITE_SEED = 20010701

_IDENT_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")


@dataclass(frozen=True)
class ComponentSelector:
    """Which component a scenario runs: a catalog ref XOR a generator recipe."""

    ref: str = ""
    family: str = ""
    seed: int = 0

    @property
    def is_generated(self) -> bool:
        return bool(self.family)

    def describe(self) -> str:
        if self.is_generated:
            return f"{self.family}(seed={self.seed})"
        return self.ref


@dataclass(frozen=True)
class SuiteConfig:
    """Driver-generator parameters for the scenario's suite."""

    seed: int = DEFAULT_SUITE_SEED
    edge_bound: int = 1
    max_transactions: int = 64
    max_cases: int = 0  # 0 = no truncation


@dataclass(frozen=True)
class BudgetConfig:
    """Execution budgets bounding one scenario's cost."""

    step_budget: int = DEFAULT_STEP_BUDGET
    max_mutants: int = 0  # 0 = unbounded battery


@dataclass(frozen=True)
class ScenarioConfig:
    """One declarative scenario."""

    ident: str
    component: ComponentSelector
    suite: SuiteConfig = field(default_factory=SuiteConfig)
    operators: Tuple[str, ...] = OPERATOR_NAMES
    methods: Tuple[str, ...] = ()  # () = the spec's update+process methods
    oracle: str = "experiment"
    budgets: BudgetConfig = field(default_factory=BudgetConfig)
    tags: Tuple[str, ...] = ()
    groups: Tuple[str, ...] = ()

    def fingerprint(self) -> str:
        """Content identity of this scenario (identity-free, cross-process)."""
        return sha256_hex("scenario", canonical(self))

    def matches(self, expression: str) -> bool:
        """Filter semantics: comma-separated terms, all must match.

        A term matches when it equals a group, a tag, the generator
        family, or the component ref — or is a substring of the ident.
        """
        for term in _filter_terms(expression):
            if not (term in self.groups
                    or term in self.tags
                    or term == self.component.family
                    or term == self.component.ref
                    or term in self.ident):
                return False
        return True

    def problems(self) -> List[str]:
        """Everything wrong with this entry (empty = valid)."""
        prefix = f"scenario {self.ident!r}: "
        found: List[str] = []
        if not _IDENT_PATTERN.match(self.ident):
            found.append(
                f"scenario ident {self.ident!r} must match "
                f"{_IDENT_PATTERN.pattern}"
            )
        selector = self.component
        if bool(selector.ref) == bool(selector.family):
            found.append(prefix + "component needs exactly one of "
                                  "'ref' or 'family'")
        if selector.family and selector.family not in FAMILIES:
            found.append(
                prefix + f"unknown family {selector.family!r} "
                         f"(known: {', '.join(FAMILY_NAMES)})"
            )
        if selector.seed < 0:
            found.append(prefix + "generator seed must be non-negative")
        if selector.ref:
            from ..components import discover_components

            catalog = discover_components()
            if selector.ref not in catalog:
                found.append(
                    prefix + f"unknown component ref {selector.ref!r} "
                             f"(known: {', '.join(sorted(catalog))})"
                )
            elif self.methods:
                spec: ClassSpec = catalog[selector.ref].__tspec__
                declared = {method.name for method in spec.methods}
                for name in self.methods:
                    if name not in declared:
                        found.append(
                            prefix + f"method {name!r} is not declared by "
                                     f"{selector.ref}'s t-spec"
                        )
        if self.suite.seed < 0:
            found.append(prefix + "suite seed must be non-negative")
        if self.suite.edge_bound < 1:
            found.append(prefix + "suite edge_bound must be >= 1")
        if self.suite.max_transactions < 1:
            found.append(prefix + "suite max_transactions must be >= 1")
        if self.suite.max_cases < 0:
            found.append(prefix + "suite max_cases must be >= 0")
        if not self.operators:
            found.append(prefix + "operator set must not be empty")
        unknown_ops = sorted(set(self.operators) - set(OPERATOR_NAMES))
        if unknown_ops:
            found.append(
                prefix + f"unknown operator(s) {', '.join(unknown_ops)}"
            )
        if len(set(self.operators)) != len(self.operators):
            found.append(prefix + "duplicate operators")
        if self.oracle not in ORACLE_NAMES:
            found.append(
                prefix + f"unknown oracle {self.oracle!r} "
                         f"(known: {', '.join(ORACLE_NAMES)})"
            )
        if self.budgets.step_budget < 1:
            found.append(prefix + "step_budget must be >= 1")
        if self.budgets.max_mutants < 0:
            found.append(prefix + "max_mutants must be >= 0")
        found.extend(prefix + problem for problem in validate_tags(self.tags))
        return found


def default_methods(spec: ClassSpec) -> Tuple[str, ...]:
    """The methods a scenario mutates when it doesn't name any: the spec's
    update and process methods, in declaration order (the state-changing
    surface — what the paper's experiments target)."""
    seen: List[str] = []
    for method in spec.methods:
        if (method.category in (MethodCategory.UPDATE, MethodCategory.PROCESS)
                and method.name not in seen):
            seen.append(method.name)
    return tuple(seen)


def _filter_terms(expression: str) -> Tuple[str, ...]:
    return tuple(term.strip() for term in expression.split(",") if term.strip())


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``k/n`` (1-based shard k of n); raises ScenarioError."""
    match = re.match(r"^(\d+)/(\d+)$", text.strip())
    if not match:
        raise ScenarioError(f"shard must look like k/n, got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ScenarioError(f"shard {text!r} out of range (need 1 <= k <= n)")
    return index, count


@dataclass(frozen=True)
class ScenarioRegistry:
    """An ordered, fingerprintable collection of scenarios."""

    scenarios: Tuple[ScenarioConfig, ...]

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def get(self, ident: str) -> ScenarioConfig:
        for scenario in self.scenarios:
            if scenario.ident == ident:
                return scenario
        raise KeyError(ident)

    def fingerprint(self) -> str:
        return sha256_hex("scenario-registry", canonical(self.scenarios))

    def filtered(self, expression: str = "") -> "ScenarioRegistry":
        if not _filter_terms(expression):
            return self
        return ScenarioRegistry(tuple(
            scenario for scenario in self.scenarios
            if scenario.matches(expression)
        ))

    def shard(self, index: int, count: int) -> "ScenarioRegistry":
        """Shard ``index`` of ``count`` (1-based).

        Assignment hashes each scenario's own content fingerprint, so it
        is stable across invocations and machines, disjoint between
        shards, and exhaustive over them — adding or removing *other*
        scenarios never moves a scenario between shards.
        """
        if count < 1 or not 1 <= index <= count:
            raise ScenarioError(
                f"shard {index}/{count} out of range (need 1 <= k <= n)"
            )
        return ScenarioRegistry(tuple(
            scenario for scenario in self.scenarios
            if int(scenario.fingerprint()[:16], 16) % count == index - 1
        ))

    def validate(self) -> List[str]:
        """All problems across all entries, plus cross-entry checks."""
        found: List[str] = []
        seen: Dict[str, int] = {}
        for scenario in self.scenarios:
            found.extend(scenario.problems())
            seen[scenario.ident] = seen.get(scenario.ident, 0) + 1
        for ident, count in sorted(seen.items()):
            if count > 1:
                found.append(f"duplicate scenario ident {ident!r} "
                             f"({count} entries)")
        return found


# ---------------------------------------------------------------------------
# loading from mappings / JSON files
# ---------------------------------------------------------------------------

def _coerce(mapping: Mapping[str, Any], origin: str) -> ScenarioConfig:
    allowed = {item.name for item in fields(ScenarioConfig)}
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ScenarioError(
            f"{origin}: unknown key(s) {', '.join(unknown)}"
        )
    if "ident" not in mapping or "component" not in mapping:
        raise ScenarioError(f"{origin}: 'ident' and 'component' are required")

    def sub(cls, key):
        raw = mapping.get(key, {})
        if not isinstance(raw, Mapping):
            raise ScenarioError(f"{origin}: {key!r} must be a mapping")
        names = {item.name for item in fields(cls)}
        extra = sorted(set(raw) - names)
        if extra:
            raise ScenarioError(
                f"{origin}: unknown {key} key(s) {', '.join(extra)}"
            )
        return cls(**raw)

    return ScenarioConfig(
        ident=str(mapping["ident"]),
        component=sub(ComponentSelector, "component"),
        suite=sub(SuiteConfig, "suite"),
        operators=tuple(mapping.get("operators", OPERATOR_NAMES)),
        methods=tuple(mapping.get("methods", ())),
        oracle=str(mapping.get("oracle", "experiment")),
        budgets=sub(BudgetConfig, "budgets"),
        tags=tuple(mapping.get("tags", ())),
        groups=tuple(mapping.get("groups", ())),
    )


def registry_from_mappings(entries: Sequence[Mapping[str, Any]],
                           origin: str = "<mappings>") -> ScenarioRegistry:
    """Build and fully validate a registry from parsed mappings."""
    scenarios: List[ScenarioConfig] = []
    problems: List[str] = []
    for position, entry in enumerate(entries):
        where = f"{origin}[{position}]"
        try:
            scenarios.append(_coerce(entry, where))
        except (ScenarioError, TypeError, ValueError) as error:
            problems.append(str(error))
    registry = ScenarioRegistry(tuple(scenarios))
    problems.extend(registry.validate())
    if problems:
        raise ScenarioError(
            "invalid scenario registry:\n  " + "\n  ".join(problems)
        )
    return registry


def load_registry(path: Union[str, Path]) -> ScenarioRegistry:
    """Load a registry from a ``*.json`` file or a directory of them.

    Each file holds one scenario mapping or a list of them; files are read
    in sorted name order so the registry — and its fingerprint — is
    independent of filesystem enumeration order.
    """
    root = Path(path)
    if root.is_dir():
        files = sorted(root.glob("*.json"))
        if not files:
            raise ScenarioError(f"no *.json scenario files under {root}")
    elif root.is_file():
        files = [root]
    else:
        raise ScenarioError(f"no such registry path: {root}")
    entries: List[Mapping[str, Any]] = []
    origins: List[str] = []
    for file in files:
        try:
            payload = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ScenarioError(f"{file}: unreadable scenario file: {error}")
        batch = payload if isinstance(payload, list) else [payload]
        for item in batch:
            if not isinstance(item, Mapping):
                raise ScenarioError(f"{file}: scenario entries must be objects")
            entries.append(item)
            origins.append(str(file))
    # registry_from_mappings reports positions; fold file names in.
    try:
        return registry_from_mappings(entries, origin="registry")
    except ScenarioError as error:
        raise ScenarioError(
            str(error) + "\n  (files: " + ", ".join(
                dict.fromkeys(origins)) + ")"
        ) from None


def scenario_to_mapping(scenario: ScenarioConfig) -> Dict[str, Any]:
    """The JSON-ready mapping a scenario round-trips through."""
    return {
        "ident": scenario.ident,
        "component": (
            {"family": scenario.component.family,
             "seed": scenario.component.seed}
            if scenario.component.is_generated
            else {"ref": scenario.component.ref}
        ),
        "suite": {
            "seed": scenario.suite.seed,
            "edge_bound": scenario.suite.edge_bound,
            "max_transactions": scenario.suite.max_transactions,
            "max_cases": scenario.suite.max_cases,
        },
        "operators": list(scenario.operators),
        "methods": list(scenario.methods),
        "oracle": scenario.oracle,
        "budgets": {
            "step_budget": scenario.budgets.step_budget,
            "max_mutants": scenario.budgets.max_mutants,
        },
        "tags": list(scenario.tags),
        "groups": list(scenario.groups),
    }


# ---------------------------------------------------------------------------
# the builtin corpus
# ---------------------------------------------------------------------------

#: Generator seeds of the smoke corpus (4 per family — the acceptance
#: floor for `run --filter smoke` is 5 families × 4 seeds + 2 paper
#: subjects ≥ 100 scenarios with the 5-operator split below).
SMOKE_SEEDS: Tuple[int, ...] = (11, 23, 37, 41)

#: The (family-seed, operator) subset that additionally lands in the CI
#: group: 5 families × 2 seeds × 4 operators = 40 scenarios.
CI_SEEDS: Tuple[int, ...] = (11, 23)
CI_OPERATORS: Tuple[str, ...] = OPERATOR_NAMES[:4]


def builtin_registry() -> ScenarioRegistry:
    """The shipped corpus.  Deterministic construction; its fingerprint is
    pinned only by content, so tests may assert stability across calls."""
    scenarios: List[ScenarioConfig] = []
    for family in FAMILY_NAMES:
        blueprint = FAMILIES[family]
        for seed in SMOKE_SEEDS:
            for operator in OPERATOR_NAMES:
                groups = ["smoke"]
                if seed in CI_SEEDS and operator in CI_OPERATORS:
                    groups.append("ci")
                scenarios.append(ScenarioConfig(
                    ident=f"{family}-s{seed}-{operator.lower()}",
                    component=ComponentSelector(family=family, seed=seed),
                    suite=SuiteConfig(),
                    operators=(operator,),
                    budgets=BudgetConfig(max_mutants=48),
                    tags=blueprint.default_tags,
                    groups=tuple(groups),
                ))
    scenarios.append(ScenarioConfig(
        ident="paper-sortable-oblist",
        component=ComponentSelector(ref="CSortableObList"),
        suite=SuiteConfig(max_transactions=200, max_cases=10),
        methods=("Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"),
        budgets=BudgetConfig(max_mutants=60),
        tags=("interface-value", "ordering", "state-corruption"),
        groups=("smoke", "paper"),
    ))
    scenarios.append(ScenarioConfig(
        ident="paper-oblist",
        component=ComponentSelector(ref="CObList"),
        suite=SuiteConfig(max_transactions=200, max_cases=10),
        methods=("AddHead", "RemoveAt", "RemoveHead"),
        budgets=BudgetConfig(max_mutants=60),
        tags=("boundary", "state-corruption"),
        groups=("smoke", "paper"),
    ))
    # One entry per remaining catalog component, so the builtin corpus
    # covers the discovered component set exactly (pinned by test).
    scenarios.append(ScenarioConfig(
        ident="component-bankaccount",
        component=ComponentSelector(ref="BankAccount"),
        tags=("boundary", "state-drop"),
        groups=("components",),
    ))
    scenarios.append(ScenarioConfig(
        ident="component-boundedstack",
        component=ComponentSelector(ref="BoundedStack"),
        tags=("boundary", "ordering"),
        groups=("components",),
    ))
    scenarios.append(ScenarioConfig(
        ident="component-product",
        component=ComponentSelector(ref="Product"),
        tags=("interface-value", "state-drop"),
        groups=("components",),
    ))
    scenarios.append(ScenarioConfig(
        ident="component-provider",
        component=ComponentSelector(ref="Provider"),
        tags=("lifecycle",),
        groups=("components",),
    ))
    return ScenarioRegistry(tuple(scenarios))
