"""Component families the scenario generator can synthesize.

Each family is a blueprint for a whole class of self-testable components:
given a deterministic RNG it draws a *t-spec* (domains, optional methods,
optional TFM structure vary with the seed) and emits matching Python
source.  Every generated component follows the same architecture:

* a **primary representation** written the way a C++ component would be —
  index arithmetic, parallel arrays, modular rings — which is exactly the
  surface the IND mutation operators perturb (plenty of non-interface
  local and member variable uses);
* a **reference-model shadow** — a trivially-correct Python structure
  (list, dict) updated alongside the primary representation — compared by
  ``class_invariant``, so every generated component carries a model-based
  oracle for free (the Polikarpova-style argument: the shadow is too
  simple to be wrong the same way the primary code is);
* **contracts** (`check_precondition` / `check_postcondition`) at the
  paper's Figure-4 positions.

Every method is *total* on its declared domains (full/empty cases return
sentinels rather than raising), so the unmutated component passes its BIT
suite by construction — the soundness property the scenario property
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.domains import RangeDomain
from ..core.rng import ReproRandom
from ..tspec.builder import SpecBuilder
from ..tspec.model import ClassSpec

#: A family synthesizer: (rng, class_name) → (validated spec, class source).
FamilySynthesizer = Callable[[ReproRandom, str], Tuple[ClassSpec, str]]


@dataclass(frozen=True)
class FamilyBlueprint:
    """One synthesizable family: name, fault-class tags, synthesizer."""

    name: str
    class_prefix: str
    description: str
    default_tags: Tuple[str, ...]
    synthesize: FamilySynthesizer


def _spec_nodes(builder: SpecBuilder, class_name: str,
                work_methods: Tuple[str, ...],
                view_methods: Tuple[str, ...],
                split_view: bool) -> None:
    """The shared TFM shape: birth → work (⟲) → death, with the access
    methods either folded into the work node or split into a view node
    reachable from work — the seed decides, so the transaction structure
    itself varies across the family."""
    builder.node("birth", [class_name], start=True)
    if split_view and view_methods:
        builder.node("work", list(work_methods))
        builder.node("view", list(view_methods))
        builder.node("death", ["dispose"])
        builder.edge("birth", "work")
        builder.edge("work", "work")
        builder.edge("work", "view")
        builder.edge("view", "work")
        builder.edge("view", "death")
        builder.edge("work", "death")
        builder.edge("birth", "death")
    else:
        builder.node("work", list(work_methods + view_methods))
        builder.node("death", ["dispose"])
        builder.edge("birth", "work")
        builder.edge("work", "work")
        builder.edge("work", "death")
        builder.edge("birth", "death")


# ---------------------------------------------------------------------------
# bounded stack
# ---------------------------------------------------------------------------

def _synthesize_stack(rng: ReproRandom, class_name: str
                      ) -> Tuple[ClassSpec, str]:
    cap_max = rng.randint(4, 12)
    low = rng.randint(-30, 0)
    high = rng.randint(10, 60)
    sentinel = low - 1
    with_clear = rng.boolean()
    split_view = rng.boolean()

    builder = SpecBuilder(class_name)
    builder.constructor(class_name, [("capacity", RangeDomain(1, cap_max))])
    builder.method("Push", [("value", RangeDomain(low, high))],
                   category="update", return_type="bool")
    builder.method("Pop", category="update", return_type="int")
    if with_clear:
        builder.method("Clear", category="process", return_type="int")
    builder.method("Top", category="access", return_type="int")
    builder.method("Size", category="access", return_type="int")
    builder.destructor("dispose")
    work = ("Push", "Pop") + (("Clear",) if with_clear else ())
    _spec_nodes(builder, class_name, work, ("Top", "Size"), split_view)
    spec = builder.build()

    clear_source = f'''
    def Clear(self) -> int:
        removed = self._top
        self._slots.clear()
        self._model.clear()
        self._top = 0
        check_postcondition(lambda: self._top == 0,
                            subject="{class_name}.Clear")
        return removed
''' if with_clear else ""

    source = f'''class {class_name}(BuiltInTest, metaclass=GeneratedComponentMeta):
    """Bounded LIFO stack (generated; capacity <= {cap_max})."""

    def __init__(self, capacity: int):
        check_precondition(lambda: 1 <= int(capacity) <= {cap_max},
                           subject="{class_name}.__init__",
                           message="capacity must be in [1, {cap_max}]")
        limit = int(capacity)
        self._capacity = limit
        self._slots: List[int] = []
        self._top = 0
        self._model: List[int] = []

    def class_invariant(self) -> bool:
        return (0 <= self._top <= self._capacity
                and self._top == len(self._slots)
                and self._slots == self._model)

    def bit_state(self) -> dict:
        return {{"capacity": self._capacity, "items": list(self._slots)}}

    def Push(self, value: int) -> bool:
        if self._top >= self._capacity:
            return False
        slot = self._top
        self._slots.append(value)
        self._top = slot + 1
        self._model.append(value)
        check_postcondition(lambda: self._top == slot + 1,
                            subject="{class_name}.Push")
        return True

    def Pop(self) -> int:
        if self._top == 0:
            return {sentinel}
        index = self._top - 1
        value = self._slots.pop()
        self._top = index
        expected = self._model.pop()
        check_postcondition(lambda: value == expected,
                            subject="{class_name}.Pop")
        return value
{clear_source}
    def Top(self) -> int:
        if self._top == 0:
            return {sentinel}
        return self._slots[self._top - 1]

    def Size(self) -> int:
        return self._top

    def dispose(self) -> None:
        self._slots.clear()
        self._model.clear()
        self._top = 0
'''
    return spec, source


# ---------------------------------------------------------------------------
# FIFO queue
# ---------------------------------------------------------------------------

def _synthesize_queue(rng: ReproRandom, class_name: str
                      ) -> Tuple[ClassSpec, str]:
    cap_max = rng.randint(3, 10)
    low = rng.randint(-20, 0)
    high = rng.randint(5, 40)
    sentinel = low - 1
    with_drain = rng.boolean()
    split_view = rng.boolean()

    builder = SpecBuilder(class_name)
    builder.constructor(class_name, [("capacity", RangeDomain(1, cap_max))])
    builder.method("Enqueue", [("value", RangeDomain(low, high))],
                   category="update", return_type="bool")
    builder.method("Dequeue", category="update", return_type="int")
    if with_drain:
        builder.method("Drain", category="process", return_type="int")
    builder.method("Front", category="access", return_type="int")
    builder.method("Length", category="access", return_type="int")
    builder.destructor("dispose")
    work = ("Enqueue", "Dequeue") + (("Drain",) if with_drain else ())
    _spec_nodes(builder, class_name, work, ("Front", "Length"), split_view)
    spec = builder.build()

    drain_source = f'''
    def Drain(self) -> int:
        drained = len(self._model)
        self._buffer = []
        self._head = 0
        self._model.clear()
        check_postcondition(lambda: self._head == 0,
                            subject="{class_name}.Drain")
        return drained
''' if with_drain else ""

    source = f'''class {class_name}(BuiltInTest, metaclass=GeneratedComponentMeta):
    """Bounded FIFO queue (generated; head-index + lazy compaction)."""

    def __init__(self, capacity: int):
        check_precondition(lambda: 1 <= int(capacity) <= {cap_max},
                           subject="{class_name}.__init__",
                           message="capacity must be in [1, {cap_max}]")
        self._capacity = int(capacity)
        self._buffer: List[int] = []
        self._head = 0
        self._model: List[int] = []

    def class_invariant(self) -> bool:
        return (0 <= self._head <= len(self._buffer)
                and len(self._model) <= self._capacity
                and self._buffer[self._head:] == self._model)

    def bit_state(self) -> dict:
        return {{"capacity": self._capacity,
                 "items": list(self._buffer[self._head:])}}

    def Enqueue(self, value: int) -> bool:
        pending = len(self._buffer) - self._head
        if pending >= self._capacity:
            return False
        self._buffer.append(value)
        self._model.append(value)
        check_postcondition(
            lambda: len(self._buffer) - self._head == pending + 1,
            subject="{class_name}.Enqueue")
        return True

    def Dequeue(self) -> int:
        if self._head >= len(self._buffer):
            return {sentinel}
        index = self._head
        value = self._buffer[index]
        self._head = index + 1
        if self._head * 2 > len(self._buffer):
            self._buffer = self._buffer[self._head:]
            self._head = 0
        expected = self._model.pop(0)
        check_postcondition(lambda: value == expected,
                            subject="{class_name}.Dequeue")
        return value
{drain_source}
    def Front(self) -> int:
        if self._head >= len(self._buffer):
            return {sentinel}
        return self._buffer[self._head]

    def Length(self) -> int:
        return len(self._buffer) - self._head

    def dispose(self) -> None:
        self._buffer = []
        self._head = 0
        self._model.clear()
'''
    return spec, source


# ---------------------------------------------------------------------------
# key–value map
# ---------------------------------------------------------------------------

def _synthesize_kvmap(rng: ReproRandom, class_name: str
                      ) -> Tuple[ClassSpec, str]:
    cap_max = rng.randint(3, 8)
    key_low = rng.randint(0, 3)
    key_high = key_low + rng.randint(3, 9)
    value_low = rng.randint(-15, 0)
    value_high = rng.randint(5, 30)
    sentinel = value_low - 1
    with_reset = rng.boolean()
    split_view = rng.boolean()

    builder = SpecBuilder(class_name)
    builder.constructor(class_name, [("capacity", RangeDomain(1, cap_max))])
    builder.method("Put", [("key", RangeDomain(key_low, key_high)),
                           ("value", RangeDomain(value_low, value_high))],
                   category="update", return_type="bool")
    builder.method("Remove", [("key", RangeDomain(key_low, key_high))],
                   category="update", return_type="bool")
    if with_reset:
        builder.method("Reset", category="process", return_type="int")
    builder.method("Get", [("key", RangeDomain(key_low, key_high))],
                   category="access", return_type="int")
    builder.method("Count", category="access", return_type="int")
    builder.destructor("dispose")
    work = ("Put", "Remove") + (("Reset",) if with_reset else ())
    _spec_nodes(builder, class_name, work, ("Get", "Count"), split_view)
    spec = builder.build()

    reset_source = f'''
    def Reset(self) -> int:
        cleared = len(self._keys)
        self._keys.clear()
        self._values.clear()
        self._model.clear()
        check_postcondition(lambda: len(self._keys) == 0,
                            subject="{class_name}.Reset")
        return cleared
''' if with_reset else ""

    source = f'''class {class_name}(BuiltInTest, metaclass=GeneratedComponentMeta):
    """Bounded key–value map (generated; parallel key/value arrays)."""

    def __init__(self, capacity: int):
        check_precondition(lambda: 1 <= int(capacity) <= {cap_max},
                           subject="{class_name}.__init__",
                           message="capacity must be in [1, {cap_max}]")
        self._capacity = int(capacity)
        self._keys: List[int] = []
        self._values: List[int] = []
        self._model: Dict[int, int] = {{}}

    def class_invariant(self) -> bool:
        return (len(self._keys) == len(self._values)
                and len(self._keys) <= self._capacity
                and len(set(self._keys)) == len(self._keys)
                and dict(zip(self._keys, self._values)) == self._model)

    def bit_state(self) -> dict:
        return {{"capacity": self._capacity,
                 "entries": sorted(zip(self._keys, self._values))}}

    def _find(self, key: int) -> int:
        for position, existing in enumerate(self._keys):
            if existing == key:
                return position
        return -1

    def Put(self, key: int, value: int) -> bool:
        index = self._find(key)
        if index >= 0:
            self._values[index] = value
            self._model[key] = value
            check_postcondition(lambda: self._values[index] == value,
                                subject="{class_name}.Put")
            return True
        if len(self._keys) >= self._capacity:
            return False
        self._keys.append(key)
        self._values.append(value)
        self._model[key] = value
        check_postcondition(lambda: len(self._keys) <= self._capacity,
                            subject="{class_name}.Put")
        return True

    def Remove(self, key: int) -> bool:
        index = self._find(key)
        if index < 0:
            return False
        last = len(self._keys) - 1
        self._keys[index] = self._keys[last]
        self._values[index] = self._values[last]
        self._keys.pop()
        self._values.pop()
        removed = self._model.pop(key)
        check_postcondition(lambda: removed is not None,
                            subject="{class_name}.Remove")
        return True
{reset_source}
    def Get(self, key: int) -> int:
        index = self._find(key)
        if index < 0:
            return {sentinel}
        return self._values[index]

    def Count(self) -> int:
        return len(self._keys)

    def dispose(self) -> None:
        self._keys.clear()
        self._values.clear()
        self._model.clear()
'''
    return spec, source


# ---------------------------------------------------------------------------
# ring buffer
# ---------------------------------------------------------------------------

def _synthesize_ringbuffer(rng: ReproRandom, class_name: str
                           ) -> Tuple[ClassSpec, str]:
    ring_max = rng.randint(3, 9)
    low = rng.randint(-25, 0)
    high = rng.randint(5, 50)
    fill = rng.randint(low, high)
    sentinel = low - 1
    with_rotate = rng.boolean()
    split_view = rng.boolean()

    builder = SpecBuilder(class_name)
    builder.constructor(class_name, [("size", RangeDomain(2, ring_max))])
    builder.method("Write", [("value", RangeDomain(low, high))],
                   category="update", return_type="int")
    builder.method("Read", category="update", return_type="int")
    if with_rotate:
        builder.method("Rotate", category="process", return_type="bool")
    builder.method("Peek", category="access", return_type="int")
    builder.method("Fill", category="access", return_type="int")
    builder.destructor("dispose")
    work = ("Write", "Read") + (("Rotate",) if with_rotate else ())
    _spec_nodes(builder, class_name, work, ("Peek", "Fill"), split_view)
    spec = builder.build()

    rotate_source = f'''
    def Rotate(self) -> bool:
        if self._count == 0:
            return False
        moved = self._ring[self._start]
        self._start = (self._start + 1) % len(self._ring)
        slot = (self._start + self._count - 1) % len(self._ring)
        self._ring[slot] = moved
        shifted = self._model.pop(0)
        self._model.append(shifted)
        check_postcondition(lambda: shifted == moved,
                            subject="{class_name}.Rotate")
        return True
''' if with_rotate else ""

    source = f'''class {class_name}(BuiltInTest, metaclass=GeneratedComponentMeta):
    """Overwriting ring buffer (generated; modular start/count indexing)."""

    def __init__(self, size: int):
        check_precondition(lambda: 2 <= int(size) <= {ring_max},
                           subject="{class_name}.__init__",
                           message="size must be in [2, {ring_max}]")
        length = int(size)
        self._ring: List[int] = [{fill}] * length
        self._start = 0
        self._count = 0
        self._model: List[int] = []

    def class_invariant(self) -> bool:
        length = len(self._ring)
        ordered = [self._ring[(self._start + offset) % length]
                   for offset in range(self._count)]
        return (0 <= self._start < length
                and 0 <= self._count <= length
                and ordered == self._model)

    def bit_state(self) -> dict:
        return {{"size": len(self._ring), "items": list(self._model)}}

    def Write(self, value: int) -> int:
        length = len(self._ring)
        slot = (self._start + self._count) % length
        self._ring[slot] = value
        if self._count == length:
            self._start = (self._start + 1) % length
            self._model.pop(0)
        else:
            self._count = self._count + 1
        self._model.append(value)
        check_postcondition(lambda: len(self._model) == self._count,
                            subject="{class_name}.Write")
        return slot

    def Read(self) -> int:
        if self._count == 0:
            return {sentinel}
        value = self._ring[self._start]
        self._start = (self._start + 1) % len(self._ring)
        self._count = self._count - 1
        expected = self._model.pop(0)
        check_postcondition(lambda: value == expected,
                            subject="{class_name}.Read")
        return value
{rotate_source}
    def Peek(self) -> int:
        if self._count == 0:
            return {sentinel}
        return self._ring[self._start]

    def Fill(self) -> int:
        return self._count

    def dispose(self) -> None:
        self._start = 0
        self._count = 0
        self._model.clear()
'''
    return spec, source


# ---------------------------------------------------------------------------
# counter / state machine
# ---------------------------------------------------------------------------

def _synthesize_machine(rng: ReproRandom, class_name: str
                        ) -> Tuple[ClassSpec, str]:
    limit_max = rng.randint(4, 15)
    step = rng.randint(1, 3)
    with_reset = rng.boolean()
    split_view = rng.boolean()

    builder = SpecBuilder(class_name)
    builder.constructor(class_name, [("limit", RangeDomain(1, limit_max))])
    builder.method("Start", category="update", return_type="bool")
    builder.method("Pause", category="update", return_type="bool")
    builder.method("Tick", category="update", return_type="int")
    if with_reset:
        builder.method("Reset", category="process", return_type="bool")
    builder.method("Status", category="access", return_type="int")
    builder.method("Ticks", category="access", return_type="int")
    builder.destructor("dispose")
    work = ("Start", "Pause", "Tick") + (("Reset",) if with_reset else ())
    _spec_nodes(builder, class_name, work, ("Status", "Ticks"), split_view)
    spec = builder.build()

    reset_source = f'''
    def Reset(self) -> bool:
        self._state = 0
        self._ticks = 0
        self._model["state"] = 0
        self._model["ticks"] = 0
        check_postcondition(lambda: self._ticks == 0,
                            subject="{class_name}.Reset")
        return True
''' if with_reset else ""

    source = f'''class {class_name}(BuiltInTest, metaclass=GeneratedComponentMeta):
    """Saturating tick counter with a 3-state lifecycle (generated).

    States: 0 = idle, 1 = running, 2 = paused.  ``Tick`` advances by
    {step} while running, saturating at the constructed limit.
    """

    def __init__(self, limit: int):
        check_precondition(lambda: 1 <= int(limit) <= {limit_max},
                           subject="{class_name}.__init__",
                           message="limit must be in [1, {limit_max}]")
        self._limit = int(limit)
        self._state = 0
        self._ticks = 0
        self._model: Dict[str, int] = {{"state": 0, "ticks": 0}}

    def class_invariant(self) -> bool:
        return (self._state in (0, 1, 2)
                and 0 <= self._ticks <= self._limit
                and self._model["state"] == self._state
                and self._model["ticks"] == self._ticks)

    def bit_state(self) -> dict:
        return {{"state": self._state, "ticks": self._ticks,
                 "limit": self._limit}}

    def Start(self) -> bool:
        if self._state == 1:
            return False
        self._state = 1
        self._model["state"] = 1
        check_postcondition(lambda: self._state == 1,
                            subject="{class_name}.Start")
        return True

    def Pause(self) -> bool:
        if self._state != 1:
            return False
        self._state = 2
        self._model["state"] = 2
        check_postcondition(lambda: self._state == 2,
                            subject="{class_name}.Pause")
        return True

    def Tick(self) -> int:
        if self._state != 1:
            return self._ticks
        advanced = self._ticks + {step}
        if advanced > self._limit:
            advanced = self._limit
        self._ticks = advanced
        self._model["ticks"] = advanced
        check_postcondition(lambda: self._ticks <= self._limit,
                            subject="{class_name}.Tick")
        return advanced
{reset_source}
    def Status(self) -> int:
        return self._state

    def Ticks(self) -> int:
        return self._ticks

    def dispose(self) -> None:
        self._state = 0
        self._ticks = 0
        self._model["state"] = 0
        self._model["ticks"] = 0
'''
    return spec, source


# ---------------------------------------------------------------------------
# the registry of families
# ---------------------------------------------------------------------------

FAMILIES: Dict[str, FamilyBlueprint] = {
    "stack": FamilyBlueprint(
        name="stack",
        class_prefix="GenStack",
        description="bounded LIFO stack over an index-tracked array",
        default_tags=("boundary", "ordering", "state-drop",
                      "shadow-divergence"),
        synthesize=_synthesize_stack,
    ),
    "queue": FamilyBlueprint(
        name="queue",
        class_prefix="GenQueue",
        description="bounded FIFO queue with head index and lazy compaction",
        default_tags=("boundary", "ordering", "state-drop",
                      "shadow-divergence"),
        synthesize=_synthesize_queue,
    ),
    "kvmap": FamilyBlueprint(
        name="kvmap",
        class_prefix="GenKvMap",
        description="bounded key–value map over parallel key/value arrays",
        default_tags=("interface-value", "state-corruption",
                      "shadow-divergence"),
        synthesize=_synthesize_kvmap,
    ),
    "ringbuffer": FamilyBlueprint(
        name="ringbuffer",
        class_prefix="GenRing",
        description="overwriting ring buffer with modular start/count",
        default_tags=("boundary", "ordering", "saturation",
                      "shadow-divergence"),
        synthesize=_synthesize_ringbuffer,
    ),
    "machine": FamilyBlueprint(
        name="machine",
        class_prefix="GenMachine",
        description="saturating tick counter with a 3-state lifecycle",
        default_tags=("lifecycle", "saturation", "state-corruption",
                      "shadow-divergence"),
        synthesize=_synthesize_machine,
    ),
}

#: Family names in deterministic order (registry construction, docs).
FAMILY_NAMES: Tuple[str, ...] = tuple(sorted(FAMILIES))
