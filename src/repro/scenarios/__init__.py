"""The scenario corpus: registry, seeded component generator, sweep runner.

This package scales the paper's two-subject evaluation to hundreds of
(component, suite, operator) scenarios:

* :mod:`repro.scenarios.registry` — declarative per-scenario configs with
  a content fingerprint, filtering and stable ``k/n`` sharding;
* :mod:`repro.scenarios.genspec` / :mod:`~repro.scenarios.families` —
  seeded synthesis of whole families of self-testable components (bounded
  stack, FIFO queue, key–value map, ring buffer, counter state machine),
  each with BIT methods, contracts and a reference-model shadow oracle;
* :mod:`repro.scenarios.materialize` / :mod:`~repro.scenarios.runtime` —
  content-addressed module files plus the pickling support that lets
  warm worker pools execute generated classes;
* :mod:`repro.scenarios.sweep` — the runner that drives every scenario
  through the existing serial/parallel mutation engines and aggregates
  one deterministic report;
* :mod:`repro.scenarios.cli` — ``python -m repro.scenarios``
  (``list`` / ``validate`` / ``run`` / ``report``).
"""

from .families import FAMILIES, FAMILY_NAMES, FamilyBlueprint
from .genspec import GeneratedComponent, GeneratorSpec, synthesize
from .materialize import default_workspace, materialize, write_module
from .registry import (
    ORACLE_NAMES,
    BudgetConfig,
    ComponentSelector,
    ScenarioConfig,
    ScenarioRegistry,
    SuiteConfig,
    builtin_registry,
    default_methods,
    load_registry,
    parse_shard,
    registry_from_mappings,
    scenario_to_mapping,
)
from .runtime import GeneratedComponentMeta, load_generated_class
from .sweep import (
    ScenarioResult,
    SweepReport,
    SweepRunner,
    merge_reports,
    report_from_mapping,
    resolve_oracle,
)
from .taxonomy import ALL_TAGS, FAULT_CLASSES, validate_tags

__all__ = [
    "ALL_TAGS",
    "BudgetConfig",
    "ComponentSelector",
    "FAMILIES",
    "FAMILY_NAMES",
    "FAULT_CLASSES",
    "FamilyBlueprint",
    "GeneratedComponent",
    "GeneratedComponentMeta",
    "GeneratorSpec",
    "ORACLE_NAMES",
    "ScenarioConfig",
    "ScenarioRegistry",
    "ScenarioResult",
    "SuiteConfig",
    "SweepReport",
    "SweepRunner",
    "builtin_registry",
    "default_methods",
    "default_workspace",
    "load_generated_class",
    "load_registry",
    "materialize",
    "merge_reports",
    "parse_shard",
    "registry_from_mappings",
    "report_from_mapping",
    "resolve_oracle",
    "scenario_to_mapping",
    "synthesize",
    "validate_tags",
    "write_module",
]
