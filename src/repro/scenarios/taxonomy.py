"""The fault-class taxonomy scenario tags are drawn from.

Every registry entry (:mod:`repro.scenarios.registry`) carries
``expected-invariant`` tags naming the fault classes its operator battery
is expected to surface on that component — the vocabulary a sweep report
aggregates over, and the registry validator's closed set (an unknown tag
is a config error, not a new category).

The classes follow the failure modes the paper's detection mechanisms
split kills between (assertion violation, crash, output difference),
refined by *what* the injected fault corrupts in a container-like
component.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: tag → one-line definition.  Closed vocabulary: the registry validator
#: rejects tags outside this mapping.
FAULT_CLASSES: Dict[str, str] = {
    "boundary": (
        "off-by-one and limit faults at capacity, index, or range edges"
    ),
    "lifecycle": (
        "faults in construction, disposal, or state reset between phases"
    ),
    "ordering": (
        "elements delivered in the wrong order (LIFO/FIFO discipline broken)"
    ),
    "interface-value": (
        "a wrong value crossing the component interface (return or lookup)"
    ),
    "state-drop": (
        "an update silently lost: the operation reports success but the "
        "state did not change"
    ),
    "state-corruption": (
        "internal representation invariants broken (parallel structures "
        "out of sync, duplicated keys)"
    ),
    "saturation": (
        "wrong behaviour at or beyond a saturating counter or full buffer"
    ),
    "shadow-divergence": (
        "primary representation diverging from the reference-model shadow "
        "(caught by the model-comparing class invariant)"
    ),
}

#: The tags in deterministic (sorted) order, for reports and docs.
ALL_TAGS: Tuple[str, ...] = tuple(sorted(FAULT_CLASSES))


def validate_tags(tags: Sequence[str]) -> List[str]:
    """Problems with a tag list: unknown tags and duplicates, in order."""
    problems: List[str] = []
    seen = set()
    for tag in tags:
        if tag not in FAULT_CLASSES:
            problems.append(f"unknown fault-class tag {tag!r}")
        elif tag in seen:
            problems.append(f"duplicate fault-class tag {tag!r}")
        seen.add(tag)
    return problems
