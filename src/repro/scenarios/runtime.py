"""Process-portable identity for generated component classes.

Generated components (:mod:`repro.scenarios.genspec`) live in modules that
are *materialized* — written into a workspace directory and imported by
file path, never installed on ``sys.path``.  That breaks the default
pickling of classes, which ships ``(module, qualname)`` and requires the
receiving process to import the module by name: a persistent mutation
worker (:mod:`repro.mutation.parallel`) may have been forked before the
module existed, and its plain ``import`` would fail.

The fix is a metaclass.  Every generated class is an instance of
:class:`GeneratedComponentMeta`, and a reducer for that metaclass is
registered in :data:`copyreg.dispatch_table` — which both the stdlib
picklers and :mod:`multiprocessing`'s ``ForkingPickler`` consult *before*
falling back to by-name class pickling.  The reducer ships
``(module, qualname, source path)``; :func:`load_generated_class` on the
receiving side reuses the module when it is already loaded, and otherwise
imports it straight from the recorded file.  Any process that can import
:mod:`repro` can therefore unpickle a generated class, no matter when it
was forked.

Mutant classes built *from* a generated component (``CompiledMutant
.build_class`` copies the owner's namespace and inherits this metaclass)
are never pickled directly — the engines ship the source-bearing
:class:`~repro.mutation.mutant.Mutant` record and rebuild locally — so the
reducer only ever sees the materialized originals.
"""

from __future__ import annotations

import copyreg
import importlib
import importlib.util
import sys
from typing import Tuple


class GeneratedComponentMeta(type):
    """Metaclass marking classes that live in materialized module files."""


def load_generated_class(module_name: str, qualname: str, path: str) -> type:
    """Resolve a generated class, importing its module from ``path`` if needed.

    A forked worker inherits the parent's loaded module and resolves the
    very same class object; a fresh process (spawn, or a worker forked
    before materialization) falls back to a file-path import and registers
    the module under its canonical name so repeated unpickles share it.
    """
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:
                raise ImportError(
                    f"cannot load generated module {module_name!r} "
                    f"from {path!r}"
                )
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except BaseException:
                sys.modules.pop(module_name, None)
                raise
    target = module
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _reduce_generated_class(cls: type) -> Tuple:
    module = sys.modules.get(cls.__module__)
    path = getattr(module, "__file__", "") or ""
    return (load_generated_class, (cls.__module__, cls.__qualname__, path))


# Registered at import time: the unpickle callable above lives in this
# module, so any process that unpickles a generated class imports this
# module first and gets the reducer too — re-pickling works transitively.
copyreg.dispatch_table[GeneratedComponentMeta] = _reduce_generated_class
