"""The ``Result.txt`` log (Figure 6 of the paper).

Generated drivers append to a log file: ``TestCaseTC0 OK!`` on success, or
the violation message, the "Method called: …" line and a state report on
failure.  :class:`ResultLog` reproduces that format and doubles as an
in-memory log for tests (pass no path).
"""

from __future__ import annotations

from typing import List, Optional, TextIO

from .outcomes import TestResult, Verdict


class ResultLog:
    """Append-only test log in the Figure-6 format.

    The backing file is opened **once**, lazily, in append mode, and held
    for the log's lifetime — not reopened per line, which under the
    parallel engine's case volume meant O(lines) ``open`` syscalls and
    allowed other writers to interleave between lines of one record.
    Each record is flushed so the file stays live-tailable; ``close()``
    releases the handle (the log reopens transparently if written again),
    and the log works as a context manager.
    """

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._lines: List[str] = []
        self._stream: Optional[TextIO] = None

    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def lines(self) -> List[str]:
        return list(self._lines)

    def text(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")

    # ------------------------------------------------------------------

    def record(self, result: TestResult) -> None:
        """Log one test result in the paper's format."""
        if result.verdict is Verdict.PASS:
            self._write(f"TestCase{result.case_ident} OK!")
        else:
            self._write(f"TestCase{result.case_ident}")
            if result.detail:
                self._write(result.detail)
            if result.failing_method:
                self._write(f"Method called: {result.failing_method}")
        if result.observation.final_state is not None:
            self._write(result.observation.final_state.format())
        self._write("")
        self._flush()

    def note(self, message: str) -> None:
        """Free-form line (session banners, suite summaries)."""
        self._write(message)
        self._flush()

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the file handle (idempotent; in-memory lines remain)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ResultLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------

    def _write(self, line: str) -> None:
        self._lines.append(line)
        if self._path is not None:
            if self._stream is None:
                self._stream = open(self._path, "a", encoding="utf-8")
            self._stream.write(line + "\n")

    def _flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()
