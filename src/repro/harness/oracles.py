"""Oracles: deciding whether a run revealed a fault.

The paper uses the component's contract assertions as a *partial* oracle and
complements them with manually derived (here: recorded golden) output checks
(sec. 2.2, 3.3).  The mutation experiment's kill rule (sec. 4) is the
composite of three detectors:

  (i)  the program crashed while running the test cases;
  (ii) an exception was raised due to assertion violation, *given that this
       was not the case with the original program*;
  (iii) the output of the program differs from the output of the original.

Each detector is an :class:`Oracle` that compares an *observed*
:class:`TestResult` against the corresponding *reference* result from the
original program (``None`` for absolute oracles that need no reference).
The composite reports the first detector that fires, in the paper's order,
as the :class:`KillReason`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .outcomes import TestResult, Verdict


class KillReason(enum.Enum):
    """Why a run was judged different/faulty (paper sec. 4 kill rule).

    The last two members are rule (i) observed at the *process* boundary:
    the paper ran every mutant as a separate program, where "the program
    crashed" covers the process dying or never terminating.  The parallel
    engine (:mod:`repro.mutation.parallel`) reproduces that view — a mutant
    that takes its worker process down, or hangs past the wall-clock
    backstop, is killed with its own distinct reason so the in-process
    detectors stay exactly comparable to the serial engine.
    """

    NONE = "none"
    CRASH = "crash"                    # rule (i)
    ASSERTION = "assertion"            # rule (ii)
    OUTPUT_DIFFERENCE = "output_diff"  # rule (iii)
    WORKER_CRASH = "worker_crash"      # rule (i): the worker process died
    WALL_TIMEOUT = "wall_timeout"      # rule (i): hung past the backstop


@dataclass(frozen=True)
class OracleJudgement:
    """One oracle's opinion about one (observed, reference) pair."""

    reason: KillReason
    detail: str = ""

    @property
    def detected(self) -> bool:
        return self.reason is not KillReason.NONE


class Oracle:
    """Base oracle interface."""

    name = "oracle"

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        raise NotImplementedError


class CrashOracle(Oracle):
    """Rule (i): the run crashed (and the original run did not)."""

    name = "crash"

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        crashed = observed.verdict in (Verdict.CRASH, Verdict.TIMEOUT)
        reference_crashed = reference is not None and reference.verdict in (
            Verdict.CRASH, Verdict.TIMEOUT,
        )
        if crashed and not reference_crashed:
            return OracleJudgement(KillReason.CRASH, observed.detail)
        return OracleJudgement(KillReason.NONE)


class AssertionOracle(Oracle):
    """Rule (ii): an assertion fired that did not fire on the original."""

    name = "assertion"

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        violated = observed.verdict is Verdict.CONTRACT_VIOLATION
        reference_violated = (
            reference is not None
            and reference.verdict is Verdict.CONTRACT_VIOLATION
        )
        if violated and not reference_violated:
            return OracleJudgement(KillReason.ASSERTION, observed.detail)
        return OracleJudgement(KillReason.NONE)


class GoldenOutputOracle(Oracle):
    """Rule (iii): the observed output differs from the reference output.

    "these outputs were validated by hand before experiments began" — the
    reference observation plays that validated-output role.
    """

    name = "golden_output"

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        if reference is None:
            return OracleJudgement(KillReason.NONE)
        if observed.observation == reference.observation:
            return OracleJudgement(KillReason.NONE)
        differences = observed.observation.differs_from(reference.observation)
        detail = "; ".join(differences) if differences else "observations differ"
        return OracleJudgement(KillReason.OUTPUT_DIFFERENCE, detail)


class LogOutputOracle(Oracle):
    """Rule (iii) at the paper's observation level: the *driver log*.

    The generated driver's output (Figure 6) contains the per-case OK/
    violation lines and the Reporter's final state dump — not the return
    value of every intermediate call.  This oracle therefore compares only
    the final reported state, making it strictly weaker than
    :class:`GoldenOutputOracle`; the difference between the two is the
    "oracle strength" ablation of DESIGN.md.
    """

    name = "log_output"

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        if reference is None:
            return OracleJudgement(KillReason.NONE)
        mine = observed.observation.final_state
        theirs = reference.observation.final_state
        if mine is None and theirs is None:
            return OracleJudgement(KillReason.NONE)
        if (mine is None) != (theirs is None):
            return OracleJudgement(
                KillReason.OUTPUT_DIFFERENCE, "one run reported no final state"
            )
        differing = mine.differs_from(theirs)
        if differing:
            detail = "final state differs: " + ", ".join(differing[:5])
            return OracleJudgement(KillReason.OUTPUT_DIFFERENCE, detail)
        return OracleJudgement(KillReason.NONE)


class SelectiveOutputOracle(Oracle):
    """Rule (iii) with tester-realistic observation: selected methods only.

    The paper complements assertions with "manually derived oracles"
    (sec. 3.3) — in practice a tester writes expected values for the
    *observer* methods (``GetHead``, ``FindMax``, …), not for the counter
    that ``Sort1`` happens to return.  This oracle compares the final
    reported state plus the return values of an explicit set of observed
    methods; everything else a method returns goes unchecked.
    """

    name = "selective_output"

    def __init__(self, observed_methods):
        self.observed = frozenset(observed_methods)
        self._final_state = LogOutputOracle()

    @staticmethod
    def _method_of(step) -> str:
        # Exception steps record "Name(args…)"; strip the argument list.
        return step.method_name.split("(")[0]

    def _visible_steps(self, result: TestResult):
        return tuple(
            step for step in result.observation.steps
            if self._method_of(step) in self.observed
        )

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        if reference is None:
            return OracleJudgement(KillReason.NONE)
        mine = self._visible_steps(observed)
        theirs = self._visible_steps(reference)
        if mine != theirs:
            for index, (a, b) in enumerate(zip(mine, theirs)):
                if a != b:
                    return OracleJudgement(
                        KillReason.OUTPUT_DIFFERENCE,
                        f"observed step {index}: {a.format()} vs {b.format()}",
                    )
            return OracleJudgement(
                KillReason.OUTPUT_DIFFERENCE,
                f"observed step count {len(mine)} vs {len(theirs)}",
            )
        return self._final_state.judge(observed, reference)


class CompositeOracle(Oracle):
    """Ordered combination; the first detector that fires wins.

    Default order is the paper's (i)-(ii)-(iii).  Ablations pass a subset
    (e.g. assertions only) to measure each detector's contribution.
    """

    name = "composite"

    def __init__(self, oracles: Optional[Sequence[Oracle]] = None):
        self.oracles: Tuple[Oracle, ...] = tuple(
            oracles if oracles is not None
            else (CrashOracle(), AssertionOracle(), LogOutputOracle())
        )

    def judge(self, observed: TestResult,
              reference: Optional[TestResult]) -> OracleJudgement:
        for oracle in self.oracles:
            judgement = oracle.judge(observed, reference)
            if judgement.detected:
                return judgement
        return OracleJudgement(KillReason.NONE)


def paper_oracle() -> CompositeOracle:
    """The sec.-4 kill rule: crash, then assertion, then output difference.

    Output is observed at full strength (every return value + the reported
    final state): the paper complements its partial assertion oracle with
    "manually derived oracles" (sec. 3.3), which is what hand-validated
    expected outputs per call amount to.
    """
    return CompositeOracle((CrashOracle(), AssertionOracle(),
                            GoldenOutputOracle()))


def log_level_oracle() -> CompositeOracle:
    """Weaker oracle: only what the driver log shows (final state dumps).

    The oracle-strength ablation compares this against :func:`paper_oracle`.
    """
    return CompositeOracle()


def experiment_oracle(spec) -> CompositeOracle:
    """The oracle configuration of the sec.-4 experiments.

    Crash, then assertion, then output at tester-realistic strength: final
    reported state plus the return values of the component's *access*
    methods per its t-spec (the "manually derived oracles in complement").
    """
    from ..tspec.model import MethodCategory

    observed = {
        method.name for method in spec.methods
        if method.category is MethodCategory.ACCESS
    }
    return CompositeOracle((
        CrashOracle(),
        AssertionOracle(),
        SelectiveOutputOracle(observed),
    ))


def assertions_only_oracle() -> CompositeOracle:
    """Ablation oracle: contract assertions alone (partial oracle claim)."""
    return CompositeOracle((AssertionOracle(),))


def output_only_oracle() -> CompositeOracle:
    """Ablation oracle: log output alone (no contract knowledge)."""
    return CompositeOracle((CrashOracle(), LogOutputOracle()))
