"""Test infrastructure: execution, verdicts, oracles, logging, reports."""

from .executor import DESTRUCTOR_METHOD, TestExecutor, run_suite
from .logfile import ResultLog
from .oracles import (
    AssertionOracle,
    CompositeOracle,
    CrashOracle,
    GoldenOutputOracle,
    KillReason,
    LogOutputOracle,
    SelectiveOutputOracle,
    Oracle,
    OracleJudgement,
    assertions_only_oracle,
    experiment_oracle,
    output_only_oracle,
    log_level_oracle,
    paper_oracle,
)
from .outcomes import (
    Observation,
    StepObservation,
    SuiteResult,
    TestResult,
    Verdict,
)
from .report import (
    compare_results,
    failing_methods_histogram,
    format_suite_result,
    pass_rate,
)

__all__ = [
    "AssertionOracle",
    "CompositeOracle",
    "CrashOracle",
    "DESTRUCTOR_METHOD",
    "GoldenOutputOracle",
    "KillReason",
    "LogOutputOracle",
    "SelectiveOutputOracle",
    "Observation",
    "Oracle",
    "OracleJudgement",
    "ResultLog",
    "StepObservation",
    "SuiteResult",
    "TestExecutor",
    "TestResult",
    "Verdict",
    "assertions_only_oracle",
    "experiment_oracle",
    "compare_results",
    "failing_methods_histogram",
    "format_suite_result",
    "output_only_oracle",
    "log_level_oracle",
    "paper_oracle",
    "pass_rate",
    "run_suite",
]
