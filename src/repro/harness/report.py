"""Human-readable reports over suite results.

The paper leaves result analysis to the user ("The user manually performs
the other functions", sec. 3.4); these helpers make that manual analysis
tractable: a one-line summary, a verdict histogram, and a failure digest
with the Figure-6 "Method called" attribution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .outcomes import SuiteResult, TestResult, Verdict


def format_suite_result(result: SuiteResult, max_failures: int = 20) -> str:
    """Multi-line report: summary, histogram, failure digest."""
    lines: List[str] = [result.summary(), ""]
    lines.append("verdict histogram:")
    for verdict_name, count in sorted(result.counts().items()):
        if count:
            lines.append(f"  {verdict_name:<20} {count}")
    failures = result.failed
    if failures:
        lines.append("")
        lines.append(f"failures ({len(failures)} total, showing {min(len(failures), max_failures)}):")
        for failure in failures[:max_failures]:
            lines.append(f"  {failure.format()}")
    return "\n".join(lines)


def failing_methods_histogram(result: SuiteResult) -> Dict[str, int]:
    """How often each method was the last called before a failure.

    This is the aggregation a tester does over the Figure-6 "Method called"
    lines to localise a fault.
    """
    histogram: Dict[str, int] = {}
    for failure in result.failed:
        name = failure.failing_method.split("(")[0] if failure.failing_method else "<unknown>"
        histogram[name] = histogram.get(name, 0) + 1
    return histogram


def compare_results(baseline: SuiteResult, observed: SuiteResult,
                    ) -> Tuple[Tuple[TestResult, TestResult], ...]:
    """Pairs of (baseline, observed) results whose verdicts/outputs differ.

    Useful for regression analysis between two versions of a component —
    the consumer-side reuse scenario of sec. 4's second experiment.
    """
    baseline_by_ident = {result.case_ident: result for result in baseline.results}
    differing: List[Tuple[TestResult, TestResult]] = []
    for observed_result in observed.results:
        reference = baseline_by_ident.get(observed_result.case_ident)
        if reference is None:
            continue
        if (reference.verdict is not observed_result.verdict
                or reference.observation != observed_result.observation):
            differing.append((reference, observed_result))
    return tuple(differing)


def pass_rate(results: Sequence[TestResult]) -> float:
    if not results:
        return 1.0
    return sum(1 for result in results if result.verdict is Verdict.PASS) / len(results)
