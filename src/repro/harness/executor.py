"""Test execution: running generated test cases against a component.

This is the runtime half of the generated driver of Figure 6: for each test
case it

1. constructs the object with the chosen constructor's argument values,
2. calls each processing method inside a try-block, checking the class
   invariant before and after every call (``CUT->InvariantTest()``),
3. destroys the object (calls its explicit teardown method when the
   component declares one; otherwise lets it go out of scope),
4. logs ``OK`` or the violation + "Method called: …" line, and captures the
   object's reported state,

producing a :class:`~repro.harness.outcomes.TestResult` whose observation is
comparable across runs (the mutation analysis compares a mutant's
observation to the original's).

Execution happens inside :func:`~repro.bit.access.test_mode`, so embedded
contract checks are live exactly as if the component had been compiled in
test mode.
"""

from __future__ import annotations

from typing import Any, Callable, ContextManager, List, Optional

from ..bit import access
from ..bit.reporter import StateReport
from ..core.errors import ContractViolation, ExecutionError, SandboxTimeout
from ..generator.suite import TestSuite
from ..generator.testcase import TestCase, TestStep
from ..obs import Telemetry, coalesce
from .logfile import ResultLog
from .outcomes import Observation, StepObservation, SuiteResult, TestResult, Verdict

#: Convention: a destructor step calls this method when the component has it.
DESTRUCTOR_METHOD = "dispose"

#: A guard receives the callable + arguments and runs it (possibly bounded).
StepGuard = Callable[..., Any]

#: A case tracer wraps one complete case's execution in a context manager —
#: the seam the coverage recorder (:mod:`repro.mutation.coverage`) hooks to
#: observe which CUT methods a case dynamically reaches.  Tracers observe
#: only; results must be identical with or without one.
CaseTracer = Callable[[TestCase], ContextManager[None]]


def _plain_guard(function: Callable, *args, **kwargs) -> Any:
    return function(*args, **kwargs)


class TestExecutor:
    """Runs test cases against one component class."""

    __test__ = False  # library class, not a pytest test

    def __init__(self, component_class: type,
                 check_invariants: bool = True,
                 log: Optional[ResultLog] = None,
                 step_guard: Optional[StepGuard] = None,
                 case_tracer: Optional[CaseTracer] = None,
                 telemetry: Optional[Telemetry] = None):
        if not isinstance(component_class, type):
            raise ExecutionError(
                f"component under test must be a class, got {component_class!r}"
            )
        self._class = component_class
        self._check_invariants = check_invariants
        self._log = log
        self._guard: StepGuard = step_guard or _plain_guard
        self._case_tracer = case_tracer
        # Per-case timing spans; the default null session records nothing
        # and the executor never branches on it (observation only).
        self._obs = coalesce(telemetry)

    @property
    def component_class(self) -> type:
        return self._class

    # ------------------------------------------------------------------
    # Suite / case execution
    # ------------------------------------------------------------------

    def run_suite(self, suite: TestSuite) -> SuiteResult:
        results = tuple(self.run_case(case) for case in suite.cases)
        return SuiteResult(class_name=self._class.__name__, results=results)

    def run_case(self, case: TestCase) -> TestResult:
        if not case.is_complete:
            return TestResult(
                case_ident=case.ident,
                class_name=self._class.__name__,
                verdict=Verdict.INCOMPLETE,
                observation=Observation(steps=()),
                detail="structured parameters not completed",
            )
        with self._obs.span("executor.case", case=case.ident,
                            component=self._class.__name__) as span:
            with access.test_mode():
                if self._case_tracer is None:
                    result = self._run_complete_case(case)
                else:
                    with self._case_tracer(case):
                        result = self._run_complete_case(case)
            span.set("verdict", result.verdict.value)
        if self._log is not None:
            self._log.record(result)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_complete_case(self, case: TestCase) -> TestResult:
        observations: List[StepObservation] = []
        # The failing-call description is rendered lazily: only the three
        # failure paths below need the repr of the current step's arguments,
        # so the hot (passing) path never pays for building it.
        current_step: Optional[TestStep] = None
        cut: Any = None
        try:
            for index, step in enumerate(case.steps):
                current_step = step
                if index == 0:
                    cut = self._guard(self._class, *step.arguments)
                    observations.append(
                        StepObservation(step.method_name, "return", "<constructed>")
                    )
                elif step.is_destruction:
                    self._destroy(cut, observations)
                else:
                    self._invoke(cut, step, observations)
                self._check_invariant(cut)
        except ContractViolation as violation:
            current_method = self._describe_call(current_step)
            observations.append(Observation.of_raise(current_method, violation))
            return self._result(case, cut, observations,
                                Verdict.CONTRACT_VIOLATION,
                                str(violation), current_method)
        except SandboxTimeout as timeout:
            current_method = self._describe_call(current_step)
            observations.append(Observation.of_raise(current_method, timeout))
            return self._result(case, cut, observations, Verdict.TIMEOUT,
                                str(timeout), current_method)
        except Exception as error:
            current_method = self._describe_call(current_step)
            observations.append(Observation.of_raise(current_method, error))
            return self._result(case, cut, observations, Verdict.CRASH,
                                f"{type(error).__name__}: {error}", current_method)
        return self._result(case, cut, observations, Verdict.PASS, "", "")

    def _invoke(self, cut: Any, step: TestStep,
                observations: List[StepObservation]) -> None:
        method = getattr(cut, step.method_name, None)
        if method is None or not callable(method):
            raise ExecutionError(
                f"{type(cut).__name__} has no callable method {step.method_name!r}"
            )
        result = self._guard(method, *step.arguments)
        observations.append(Observation.of_return(step.method_name, result))

    def _destroy(self, cut: Any, observations: List[StepObservation]) -> None:
        teardown = getattr(cut, DESTRUCTOR_METHOD, None)
        if callable(teardown):
            result = self._guard(teardown)
            observations.append(Observation.of_return(DESTRUCTOR_METHOD, result))
        else:
            observations.append(
                StepObservation("<destruction>", "return", "<deleted>")
            )

    def _check_invariant(self, cut: Any) -> None:
        if not self._check_invariants or cut is None:
            return
        checker = getattr(cut, "invariant_test", None)
        if callable(checker):
            self._guard(checker)

    def _result(self, case: TestCase, cut: Any,
                observations: List[StepObservation], verdict: Verdict,
                detail: str, failing_method: str) -> TestResult:
        final_state = None
        if cut is not None:
            try:
                # Guarded: a fault-corrupted object may have a pathological
                # state (cyclic structures); the budget bounds the capture.
                final_state = self._guard(StateReport.capture, cut)
            except Exception:
                final_state = None  # a hostile state must not mask the verdict
        return TestResult(
            case_ident=case.ident,
            class_name=self._class.__name__,
            verdict=verdict,
            observation=Observation(steps=tuple(observations),
                                    final_state=final_state),
            detail=detail,
            failing_method=failing_method,
        )

    @staticmethod
    def _describe_call(step: Optional[TestStep]) -> str:
        if step is None:
            return "<none>"
        rendered = ", ".join(repr(argument) for argument in step.arguments)
        return f"{step.method_name}({rendered})"


def run_suite(component_class: type, suite: TestSuite, **options) -> SuiteResult:
    """One-call convenience: execute a suite against a class."""
    return TestExecutor(component_class, **options).run_suite(suite)
