"""Test outcomes: verdicts, per-step observations, and result records.

The paper's driver classifies what happened to each test case (Figure 6):
it ran to completion and logged ``OK``, or an assertion was violated and the
exception handler logged the offending method, or the program crashed.  The
mutation experiment (sec. 4) additionally compares the *output* of a run
against the validated output of the original program.

The :class:`Observation` captured here is that comparable output: for each
step, the method called and what it produced (a snapshot of the return value
or the exception), plus the final reported object state.  Two runs behaved
identically exactly when their observations are equal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..bit.reporter import StateReport, snapshot_value


class Verdict(enum.Enum):
    """What happened when a test case ran."""

    PASS = "pass"
    CONTRACT_VIOLATION = "contract_violation"  # assertion raised (Figure 5/6)
    CRASH = "crash"                            # any other exception
    TIMEOUT = "timeout"                        # step budget exhausted (mutants)
    INCOMPLETE = "incomplete"                  # unbound structured parameters
    HARNESS_ERROR = "harness_error"            # the infrastructure failed

    @property
    def ran(self) -> bool:
        return self in (Verdict.PASS, Verdict.CONTRACT_VIOLATION, Verdict.CRASH,
                        Verdict.TIMEOUT)


@dataclass(frozen=True)
class StepObservation:
    """What one method call produced."""

    method_name: str
    outcome: str  # "return" | "raise"
    detail: Any   # snapshot of the return value, or "ExcType: message"

    def format(self) -> str:
        arrow = "->" if self.outcome == "return" else "!!"
        return f"{self.method_name} {arrow} {self.detail!r}"


@dataclass(frozen=True)
class Observation:
    """The comparable output of one test-case run."""

    steps: Tuple[StepObservation, ...]
    final_state: Optional[StateReport] = None

    def differs_from(self, other: "Observation") -> Tuple[str, ...]:
        """Human-readable description of the first few differences."""
        differences: List[str] = []
        for index, (mine, theirs) in enumerate(zip(self.steps, other.steps)):
            if mine != theirs:
                differences.append(
                    f"step {index}: {mine.format()} vs {theirs.format()}"
                )
        if len(self.steps) != len(other.steps):
            differences.append(
                f"step count {len(self.steps)} vs {len(other.steps)}"
            )
        if (self.final_state is None) != (other.final_state is None):
            differences.append("one run has no final state")
        elif self.final_state is not None and other.final_state is not None:
            for name in self.final_state.differs_from(other.final_state):
                differences.append(f"final state attribute {name!r} differs")
        return tuple(differences[:10])

    @staticmethod
    def of_return(method_name: str, value: Any) -> StepObservation:
        return StepObservation(method_name, "return", snapshot_value(value))

    @staticmethod
    def of_raise(method_name: str, error: BaseException) -> StepObservation:
        return StepObservation(
            method_name, "raise", f"{type(error).__name__}: {error}"
        )


@dataclass(frozen=True)
class TestResult:
    """Outcome of running one test case against one class."""

    __test__ = False  # library class, not a pytest test

    case_ident: str
    class_name: str
    verdict: Verdict
    observation: Observation
    detail: str = ""             # violation message, crash text, …
    failing_method: str = ""     # "Method called: …" of Figure 6

    @property
    def passed(self) -> bool:
        return self.verdict is Verdict.PASS

    def format(self) -> str:
        base = f"{self.case_ident}: {self.verdict.value}"
        if self.detail:
            base += f" — {self.detail}"
        if self.failing_method:
            base += f" (method called: {self.failing_method})"
        return base


@dataclass(frozen=True)
class SuiteResult:
    """Outcome of running a whole suite against one class."""

    class_name: str
    results: Tuple[TestResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def passed(self) -> Tuple[TestResult, ...]:
        return tuple(result for result in self.results if result.passed)

    @property
    def failed(self) -> Tuple[TestResult, ...]:
        return tuple(
            result for result in self.results
            if result.verdict in (Verdict.CONTRACT_VIOLATION, Verdict.CRASH,
                                  Verdict.TIMEOUT)
        )

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.results)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {verdict.value: 0 for verdict in Verdict}
        for result in self.results:
            tally[result.verdict.value] += 1
        return tally

    def by_verdict(self, verdict: Verdict) -> Tuple[TestResult, ...]:
        return tuple(result for result in self.results if result.verdict is verdict)

    def result_for(self, case_ident: str) -> TestResult:
        for result in self.results:
            if result.case_ident == case_ident:
                return result
        raise KeyError(f"no result for test case {case_ident!r}")

    def summary(self) -> str:
        tally = self.counts()
        interesting = ", ".join(
            f"{name}={count}" for name, count in tally.items() if count
        )
        return f"{self.class_name}: {len(self.results)} cases ({interesting})"
