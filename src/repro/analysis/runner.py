"""The lint engine: apply every enabled rule to every component unit.

Order of operations per finding: rule emits at its default severity → the
config's severity override re-labels it → inline suppression directives
(finding line or class line) move it to the suppressed list.  Findings come
back sorted by file, line, then rule id, so output is stable across runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding, LintResult
from .loader import load_module, resolve_targets
from .registry import RuleRegistry, default_registry
from .unit import ComponentUnit, SourceCache, units_from_module


def lint_units(units: Sequence[ComponentUnit],
               config: LintConfig = DEFAULT_CONFIG,
               registry: Optional[RuleRegistry] = None) -> LintResult:
    registry = registry or default_registry()
    result = LintResult(components=len(units))
    for unit in units:
        for rule in registry:
            if not config.is_enabled(rule):
                continue
            severity = config.severity_for(rule)
            for finding in rule.check(unit):
                if severity is not finding.severity:
                    finding = finding.with_severity(severity)
                directive = unit.suppression_at(
                    finding.rule_id, finding.rule_name,
                    finding.path, finding.line,
                )
                if directive is not None:
                    result.suppressed.append(
                        finding.with_suppression(directive.justification)
                    )
                else:
                    result.findings.append(finding)
    result.findings.sort(key=_sort_key)
    result.suppressed.sort(key=_sort_key)
    return result


def lint_paths(paths: Iterable[str],
               config: LintConfig = DEFAULT_CONFIG,
               registry: Optional[RuleRegistry] = None) -> LintResult:
    """Lint every component found under the given files/dirs/module paths."""
    files = resolve_targets(paths)
    cache = SourceCache()
    units: List[ComponentUnit] = []
    seen_classes = set()
    for file in files:
        module = load_module(file)
        for unit in units_from_module(module, cache):
            if unit.klass not in seen_classes:
                seen_classes.add(unit.klass)
                units.append(unit)
    result = lint_units(units, config, registry)
    result.files = len(files)
    return result


def _sort_key(finding: Finding):
    return (finding.path, finding.line, finding.rule_id, finding.message)


def default_component_target() -> str:
    """The shipped components package directory (the CLI's default target)."""
    import repro.components
    return str(Path(repro.components.__file__).parent)
