"""Contract rules: do the Figure-5 assertion predicates even resolve?

A contract that raises ``NameError`` when it finally runs is worse than no
contract: it masks the violation it was meant to detect.  This rule walks
every ``require``/``ensure`` decorator and every in-body
``check_precondition``/``check_postcondition``/``check_invariant`` call
(:mod:`repro.bit.assertions`) and verifies each free name of the predicate
expression resolves — to a lambda parameter, the enclosing method's scope,
a module global, or a builtin.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .findings import Finding, Severity
from .registry import Rule, register
from .unit import (
    BUILTIN_NAMES,
    ComponentUnit,
    MethodInfo,
    free_names,
    function_scope_names,
)

#: Decorators from repro.bit.assertions that take a predicate first.
CONTRACT_DECORATORS = frozenset({"require", "ensure"})
#: In-body check calls from repro.bit.assertions.
CONTRACT_CALLS = frozenset(
    {"check_precondition", "check_postcondition", "check_invariant"}
)


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@register
class ContractUndefinedName(Rule):
    """Contract predicate references a name that cannot resolve at runtime."""

    id = "CL010"
    name = "contract-undefined-name"
    severity = Severity.ERROR
    summary = ("require/ensure/check_* predicate references an undefined "
               "name (contract would raise NameError, not a violation)")

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        for info in unit.methods.values():
            module_names = info.module.global_names
            # Decorator predicates close over module scope only: the lambda
            # is evaluated at class-definition time, outside any method.
            for decorator in info.node.decorator_list:
                if (isinstance(decorator, ast.Call)
                        and _callee_name(decorator) in CONTRACT_DECORATORS
                        and decorator.args):
                    yield from self._check_predicate(
                        unit, info, decorator.args[0],
                        scope=module_names | BUILTIN_NAMES,
                        context=f"@{_callee_name(decorator)} on "
                                f"{info.class_name}.{info.pyname}",
                    )
            # In-body check calls additionally see the method's own scope.
            method_scope = (module_names | BUILTIN_NAMES
                            | function_scope_names(info.node))
            for node in ast.walk(info.node):
                if (isinstance(node, ast.Call)
                        and _callee_name(node) in CONTRACT_CALLS
                        and node.args):
                    yield from self._check_predicate(
                        unit, info, node.args[0],
                        scope=method_scope,
                        context=f"{_callee_name(node)} in "
                                f"{info.class_name}.{info.pyname}",
                    )

    def _check_predicate(self, unit: ComponentUnit, info: MethodInfo,
                         predicate: ast.expr, scope: Set[str],
                         context: str) -> Iterable[Finding]:
        unresolved = sorted(free_names(predicate) - scope)
        for name in unresolved:
            yield self.finding(
                unit, getattr(predicate, "lineno", info.line),
                f"{unit.class_name}: contract predicate of {context} "
                f"references undefined name {name!r}",
                path=info.path,
            )
