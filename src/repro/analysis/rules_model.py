"""Test-model rules: the TFM's node/edge structure vs the class it models.

The dynamic pipeline only notices a broken model when the driver generator
walks it; these rules catch the same defects statically — a node whose
method ident vanished from the spec, transactions that can never start, and
states from which no death node is reachable (the paper's birth-to-death
transaction shape, sec. 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .findings import Finding, Severity
from .registry import Rule, register
from .unit import ComponentUnit


@register
class TfmDanglingMethod(Rule):
    """TFM node referencing a method ident the spec no longer declares."""

    id = "CL008"
    name = "tfm-dangling-method"
    severity = Severity.ERROR
    summary = "TFM node references a method ident missing from the t-spec"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        known = set(unit.spec.method_idents)
        for node in unit.spec.nodes:
            for method_ident in node.methods:
                if method_ident not in known:
                    yield self.finding(
                        unit, unit.class_line,
                        f"{unit.class_name}: TFM node {node.ident} references "
                        f"method {method_ident!r}, which the t-spec does not "
                        "declare",
                    )


@register
class TfmReachability(Rule):
    """Transactions that can never start, or never reach a death node."""

    id = "CL009"
    name = "tfm-reachability"
    severity = Severity.ERROR
    summary = ("TFM has no birth/death node, unreachable nodes, or states "
               "that cannot terminate")

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        spec = unit.spec
        if not spec.nodes:
            if not spec.is_abstract:
                yield self.finding(
                    unit, unit.class_line,
                    f"{unit.class_name}: t-spec carries no test model nodes",
                )
            return

        births = {node.ident for node in spec.start_nodes}
        deaths = {node.ident for node in spec.end_nodes}
        if not births:
            yield self.finding(
                unit, unit.class_line,
                f"{unit.class_name}: test model has no birth node — no "
                "transaction can ever start",
            )
        if not deaths:
            yield self.finding(
                unit, unit.class_line,
                f"{unit.class_name}: test model has no death node — no "
                "transaction can ever terminate",
            )
        if not births or not deaths:
            return

        adjacency = spec.adjacency()
        reachable = _forward_closure(births, adjacency)
        for node in spec.nodes:
            if node.ident not in reachable:
                yield self.finding(
                    unit, unit.class_line,
                    f"{unit.class_name}: TFM node {node.ident} is statically "
                    "unreachable from every birth node",
                )

        reverse: Dict[str, List[str]] = {node.ident: [] for node in spec.nodes}
        for source, targets in adjacency.items():
            for target in targets:
                reverse.setdefault(target, []).append(source)
        terminating = _forward_closure(deaths, reverse)
        for node in spec.nodes:
            if node.ident in reachable and node.ident not in terminating:
                yield self.finding(
                    unit, unit.class_line,
                    f"{unit.class_name}: TFM node {node.ident} cannot reach "
                    "any death node — transactions through it never terminate",
                )


def _forward_closure(seeds: Set[str],
                     adjacency: Dict[str, Tuple[str, ...]]) -> Set[str]:
    seen: Set[str] = set()
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(adjacency.get(current, ()))
    return seen
