"""Interface-conformance rules: source ``def``s vs t-spec ``MethodSig``s.

These rules detect the drift the paper's dynamic pipeline only catches at
driver-execution time (sec. 3.2-(vii)): a public method added to the class
but never specified, a spec'd method that no longer exists, an arity or
parameter-name mismatch, and attribute declarations that disagree with the
assignments the source actually performs.

Attribute-name matching tolerates the Python privacy idiom: a declared
attribute ``count`` matches a source attribute ``count`` or ``_count`` —
t-specs are language-independent (C++ heritage) and do not spell the
underscore.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .findings import Finding, Severity
from .registry import Rule, register
from .unit import ComponentUnit, def_signature, literal_value


def _declared_attribute_names(unit: ComponentUnit) -> Set[str]:
    return {attribute.name for attribute in unit.spec.attributes}


def _matches_declared(store_name: str, declared: Set[str]) -> bool:
    return store_name in declared or store_name.lstrip("_") in declared


@register
class SpecMissingMethod(Rule):
    """Public method defined in the class body but absent from the t-spec."""

    id = "CL001"
    name = "spec-missing-method"
    severity = Severity.ERROR
    summary = ("public method in source is not declared in the t-spec "
               "(untested interface)")

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        spec_names = {method.name for method in unit.spec.methods}
        for info in unit.own_public_methods():
            if info.pyname in spec_names:
                continue
            yield self.finding(
                unit, info.line,
                f"{unit.class_name}: public method {info.pyname!r} is not "
                "declared in the t-spec — the test model can never exercise it",
                path=info.path,
            )


@register
class SpecUnknownMethod(Rule):
    """T-spec method whose implementation no longer exists in the source."""

    id = "CL002"
    name = "spec-unknown-method"
    severity = Severity.ERROR
    summary = "t-spec declares a method the source no longer defines"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        for method in unit.spec.methods:
            if method.is_destructor:
                continue  # Python destructors are synthetic (GC-driven)
            if method.is_constructor and unit.resolve(method) is None:
                # No __init__ anywhere in the MRO: the default constructor
                # exists, but only satisfies a parameterless spec record.
                if method.arity == 0:
                    continue
                yield self.finding(
                    unit, unit.class_line,
                    f"{unit.class_name}: spec constructor {method.ident} "
                    f"declares {method.arity} parameter(s) but the class "
                    "defines no __init__",
                )
                continue
            if unit.resolve(method) is None:
                yield self.finding(
                    unit, unit.class_line,
                    f"{unit.class_name}: t-spec method {method.ident} "
                    f"({method.name!r}) has no implementation in the class "
                    "or its bases",
                )


@register
class SignatureArity(Rule):
    """Spec ``MethodSig`` arity incompatible with the actual ``def``."""

    id = "CL003"
    name = "signature-arity"
    severity = Severity.ERROR
    summary = "t-spec signature arity does not fit the def's parameter list"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        for method in unit.spec.methods:
            if method.is_destructor:
                continue
            info = unit.resolve(method)
            if info is None:
                continue  # CL002 reports the missing def
            shape = def_signature(info.node)
            if shape.accepts(method.arity):
                continue
            yield self.finding(
                unit, info.line,
                f"{unit.class_name}: spec method {method.ident} "
                f"({method.signature()}) passes {method.arity} argument(s) "
                f"but {info.class_name}.{info.pyname} takes "
                f"{shape.describe()}",
                path=info.path,
            )


@register
class SignatureParameterNames(Rule):
    """Spec parameter names disagree with the def's positional names."""

    id = "CL004"
    name = "signature-param-name"
    severity = Severity.WARNING
    summary = "t-spec parameter names differ from the def's parameter names"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        for method in unit.spec.methods:
            if method.is_destructor:
                continue
            info = unit.resolve(method)
            if info is None:
                continue
            shape = def_signature(info.node)
            if shape.maximum is None:  # *args: no names to compare against
                continue
            if not shape.accepts(method.arity):
                continue  # CL003 already reports; names are meaningless
            for spec_param, def_name in zip(method.parameters,
                                            shape.parameter_names):
                if spec_param.name != def_name:
                    yield self.finding(
                        unit, info.line,
                        f"{unit.class_name}: spec method {method.ident} names "
                        f"parameter {spec_param.name!r} but "
                        f"{info.class_name}.{info.pyname} calls it "
                        f"{def_name!r}",
                        path=info.path,
                    )


@register
class UndeclaredAttribute(Rule):
    """Public instance attribute written in source but absent from the spec."""

    id = "CL005"
    name = "undeclared-attribute"
    severity = Severity.WARNING
    summary = ("public attribute assigned in source but not declared in the "
               "t-spec (invisible to invariant/reporter domains)")

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        declared = _declared_attribute_names(unit)
        reported: Set[str] = set()
        for store in unit.attribute_stores:
            if store.attr.startswith("_"):
                continue  # private state is not part of the declared interface
            if store.attr in declared or store.attr in reported:
                continue
            reported.add(store.attr)
            yield self.finding(
                unit, store.line,
                f"{unit.class_name}: public attribute {store.attr!r} is "
                f"assigned in {store.class_name}.{store.method} but the "
                "t-spec declares no domain for it",
                path=store.path,
            )


@register
class SpecUnknownAttribute(Rule):
    """Declared attribute that no method of the class ever assigns."""

    id = "CL006"
    name = "spec-unknown-attribute"
    severity = Severity.WARNING
    summary = "t-spec declares an attribute the source never assigns"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        written = {store.attr for store in unit.attribute_stores}
        for attribute in unit.spec.attributes:
            if attribute.name in written or f"_{attribute.name}" in written:
                continue
            yield self.finding(
                unit, unit.class_line,
                f"{unit.class_name}: t-spec declares attribute "
                f"{attribute.name!r} ({attribute.domain.describe()}) but no "
                "method ever assigns it",
            )


@register
class AttributeDomainViolation(Rule):
    """Literal assignment outside the attribute's declared value domain."""

    id = "CL007"
    name = "attribute-domain"
    severity = Severity.ERROR
    summary = "literal assigned to an attribute violates its declared domain"

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        declared = {attribute.name: attribute for attribute in unit.spec.attributes}
        for store in unit.attribute_stores:
            attribute = declared.get(store.attr) or declared.get(
                store.attr.lstrip("_"))
            if attribute is None or store.value is None:
                continue
            is_literal, value = literal_value(store.value)
            if not is_literal or value is None:
                continue
            if attribute.domain.contains(value):
                continue
            yield self.finding(
                unit, store.line,
                f"{unit.class_name}: {store.class_name}.{store.method} assigns "
                f"{value!r} to attribute {store.attr!r}, outside its declared "
                f"domain {attribute.domain.describe()}",
                path=store.path,
            )
