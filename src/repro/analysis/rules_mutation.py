"""Mutation-applicability rule: can the IND operators exercise the spec?

The adequacy criterion of sec. 4 measures a transaction suite by the
interface mutants it kills.  All five Table-1 operators perturb *use sites
of local variables* — so a component whose spec'd methods define no locals
offers the operators zero mutation points, and its suite's mutation score is
vacuously undefined.  This rule flags such components so the producer knows
the criterion cannot grade them.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.errors import MutationError
from ..mutation.operators import ALL_OPERATORS, MethodContext
from .findings import Finding, Severity
from .registry import Rule, register
from .unit import ComponentUnit


@register
class MutationApplicability(Rule):
    """No IND operator derives a single mutation point from the interface."""

    id = "CL011"
    name = "mutation-applicability"
    severity = Severity.WARNING
    summary = ("the five IND interface-mutation operators derive zero "
               "mutation points from every spec'd method")

    def check(self, unit: ComponentUnit) -> Iterable[Finding]:
        examined: List[str] = []
        for method in unit.spec.methods:
            if method.is_destructor:
                continue  # synthetic in Python; nothing to mutate
            info = unit.resolve(method)
            if info is None:
                continue  # CL002 reports missing implementations
            if info.pyname in examined:
                continue  # constructor overloads share one __init__
            examined.append(info.pyname)
            if self._point_count(unit, info.class_name, info.pyname) > 0:
                return
        if not examined:
            return
        shown = ", ".join(examined[:6]) + (", …" if len(examined) > 6 else "")
        yield self.finding(
            unit, unit.class_line,
            f"{unit.class_name}: none of the five IND operators derives a "
            f"mutation point from any spec'd method ({shown}) — the "
            "mutation-adequacy criterion cannot grade this interface",
        )

    @staticmethod
    def _point_count(unit: ComponentUnit, class_name: str,
                     method_name: str) -> int:
        owner = None
        for klass in unit.klass.__mro__:
            if klass.__name__ == class_name and method_name in vars(klass):
                owner = klass
                break
        if owner is None:
            return 0
        try:
            context = MethodContext(owner, method_name)
        except (MutationError, OSError, TypeError):
            return 0
        return sum(len(operator.points(context)) for operator in ALL_OPERATORS)
