"""Findings: the structured output records of ``concat-lint``.

A finding is one detected conformance problem between a component's Python
source and its embedded t-spec (paper sec. 3.2-(vii): the embedded
specification lets a tester detect "incompleteness, ambiguity and
inconsistency").  Findings carry everything the three emitters (human text,
JSON, SARIF) need: rule identity, severity, location, and message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class Severity(enum.Enum):
    """Severity ladder; only :attr:`ERROR` findings fail the lint run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @classmethod
    def from_keyword(cls, keyword: str) -> "Severity":
        try:
            return cls(keyword.lower())
        except ValueError:
            valid = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown severity {keyword!r} (valid: {valid})"
            ) from None

    @property
    def sarif_level(self) -> str:
        """SARIF ``level`` keyword (``info`` is spelled ``note`` in SARIF)."""
        return "note" if self is Severity.INFO else self.value


@dataclass(frozen=True)
class Finding:
    """One conformance problem, anchored to a source location."""

    rule_id: str          # short stable id, e.g. "CL001"
    rule_name: str        # readable slug, e.g. "spec-missing-method"
    severity: Severity
    path: str             # source file the finding anchors to
    line: int             # 1-based line in ``path``
    message: str
    component: str = ""   # class name of the component under analysis
    suppressed: bool = False
    justification: Optional[str] = None  # text after ``--`` in the directive

    def with_severity(self, severity: Severity) -> "Finding":
        from dataclasses import replace
        return replace(self, severity=severity)

    def with_suppression(self, justification: Optional[str]) -> "Finding":
        from dataclasses import replace
        return replace(self, suppressed=True, justification=justification)

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "component": self.component,
        }
        if self.suppressed:
            record["suppressed"] = True
            if self.justification:
                record["justification"] = self.justification
        return record

    def render(self) -> str:
        """Human one-liner: ``path:line: [id name] severity: message``."""
        tag = f"[{self.rule_id} {self.rule_name}]"
        text = f"{self.path}:{self.line}: {tag} {self.severity.value}: {self.message}"
        if self.suppressed:
            reason = f" ({self.justification})" if self.justification else ""
            text += f" [suppressed{reason}]"
        return text


@dataclass
class LintResult:
    """The outcome of one lint run: active findings plus suppression stats."""

    findings: list = field(default_factory=list)       # List[Finding], active
    suppressed: list = field(default_factory=list)     # List[Finding]
    components: int = 0
    files: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when error findings (or warnings under --strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0
