"""``python -m repro.analysis`` — the concat-lint command line.

Usage::

    python -m repro.analysis                       # lint shipped components
    python -m repro.analysis src/repro/components  # same, explicit
    python -m repro.analysis repro.components.stack --format json
    python -m repro.analysis path/to/component.py --disable CL004,CL011
    python -m repro.analysis --list-rules

Exit status: 0 clean, 1 when error-severity findings remain (or warnings
under ``--strict``), 2 when a target cannot be resolved or imported.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .config import LintConfig
from .findings import Severity
from .loader import TargetError
from .registry import default_registry
from .report import render_json, render_sarif, render_text, summary_line
from .runner import default_component_target, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=("concat-lint: static conformance analysis of "
                     "self-testable components against their embedded "
                     "t-spec and transaction flow model."),
    )
    parser.add_argument(
        "targets", nargs="*",
        help="files, directories, or dotted module paths to lint "
             "(default: the shipped repro.components package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/names to switch off "
             "(e.g. CL004,mutation-applicability)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/names; when given, only these run",
    )
    parser.add_argument(
        "--severity", action="append", default=[], metavar="RULE=LEVEL",
        help="override a rule's severity, e.g. --severity CL004=error",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split_all(values: List[str]) -> List[str]:
    parts: List[str] = []
    for value in values:
        parts.extend(part for part in value.split(",") if part.strip())
    return parts


def _parse_severities(values: List[str]) -> dict:
    overrides = {}
    for value in _split_all(values):
        if "=" not in value:
            raise ValueError(
                f"--severity expects RULE=LEVEL, got {value!r}")
        rule, _, level = value.partition("=")
        overrides[rule] = level
    return overrides


def list_rules() -> str:
    rows = default_registry().table()
    id_width = max(len(row["id"]) for row in rows)
    name_width = max(len(row["name"]) for row in rows)
    lines = [
        f"{row['id']:<{id_width}}  {row['name']:<{name_width}}  "
        f"{row['severity']:<7}  {row['summary']}"
        for row in rows
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away mid-print (`... | head`): the lint itself
        # finished, so die quietly like a well-behaved filter
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(list_rules())
        return 0

    try:
        config = LintConfig.build(
            disable=_split_all(options.disable),
            select=_split_all(options.select),
            severities=_parse_severities(options.severity),
            strict=options.strict,
        )
    except ValueError as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    targets = options.targets or [default_component_target()]
    try:
        result = lint_paths(targets, config)
    except TargetError as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(render_json(result))
    elif options.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, show_suppressed=options.show_suppressed))

    if options.format != "text":
        print(summary_line(result), file=sys.stderr)
    return result.exit_code(strict=options.strict)
