"""Finding emitters: human text, JSON, and SARIF 2.1.0.

The JSON shape is the tool's own stable contract (consumed by the CI
workflow); SARIF targets code-scanning UIs (GitHub security tab, VS Code
SARIF viewers) and carries per-rule metadata from the registry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .findings import LintResult, Severity
from .registry import RuleRegistry, default_registry

TOOL_NAME = "concat-lint"
TOOL_URI = "https://example.invalid/pyconcat/concat-lint"  # informational only


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines: List[str] = [finding.render() for finding in result.findings]
    if show_suppressed:
        lines.extend(finding.render() for finding in result.suppressed)
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: LintResult) -> str:
    infos = result.count(Severity.INFO)
    parts = [
        f"{result.errors} error{'s' if result.errors != 1 else ''}",
        f"{result.warnings} warning{'s' if result.warnings != 1 else ''}",
    ]
    if infos:
        parts.append(f"{infos} info")
    text = ", ".join(parts)
    text += (f" across {result.components} component"
             f"{'s' if result.components != 1 else ''}")
    if result.suppressed:
        text += f" ({len(result.suppressed)} suppressed)"
    return text


def render_json(result: LintResult) -> str:
    payload: Dict = {
        "tool": TOOL_NAME,
        "summary": {
            "errors": result.errors,
            "warnings": result.warnings,
            "info": result.count(Severity.INFO),
            "suppressed": len(result.suppressed),
            "components": result.components,
            "files": result.files,
        },
        "findings": [finding.to_json() for finding in result.findings],
        "suppressed": [finding.to_json() for finding in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult,
                 registry: Optional[RuleRegistry] = None) -> str:
    registry = registry or default_registry()
    rules = [
        {
            "id": row["id"],
            "name": row["name"],
            "shortDescription": {"text": row["summary"]},
            "defaultConfiguration": {
                "level": Severity(row["severity"]).sarif_level
            },
        }
        for row in registry.table()
    ]
    rule_index = {row["id"]: index for index, row in enumerate(registry.table())}
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index.get(finding.rule_id, -1),
                "level": finding.severity.sarif_level,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {"startLine": max(1, finding.line)},
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


FORMATTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
