"""Per-rule configuration for ``concat-lint``.

A :class:`LintConfig` decides, for every registered rule, whether it runs and
at which severity.  Rules are addressable by short id (``CL001``) or by slug
(``spec-missing-method``); both spellings work everywhere a rule is named —
``--disable``, ``--select``, severity overrides, and inline suppression
directives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, TYPE_CHECKING

from .findings import Severity

if TYPE_CHECKING:  # pragma: no cover — import cycle guard for annotations only
    from .registry import Rule


def _normalize(names: Iterable[str]) -> FrozenSet[str]:
    return frozenset(name.strip().lower() for name in names if name.strip())


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, and at which severity.

    * ``disabled`` — rule ids/names switched off;
    * ``selected`` — when non-empty, *only* these rules run;
    * ``severity_overrides`` — rule id/name → severity replacing the default;
    * ``strict`` — exit non-zero on warnings too (consumed by the CLI).
    """

    disabled: FrozenSet[str] = frozenset()
    selected: FrozenSet[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    strict: bool = False

    @classmethod
    def build(cls,
              disable: Iterable[str] = (),
              select: Iterable[str] = (),
              severities: Optional[Mapping[str, str]] = None,
              strict: bool = False) -> "LintConfig":
        overrides: Dict[str, Severity] = {}
        for name, keyword in (severities or {}).items():
            overrides[name.strip().lower()] = Severity.from_keyword(keyword)
        return cls(
            disabled=_normalize(disable),
            selected=_normalize(select),
            severity_overrides=overrides,
            strict=strict,
        )

    # -- queries ----------------------------------------------------------

    def _keys(self, rule: "Rule") -> FrozenSet[str]:
        return frozenset((rule.id.lower(), rule.name.lower()))

    def is_enabled(self, rule: "Rule") -> bool:
        keys = self._keys(rule)
        if keys & self.disabled:
            return False
        if self.selected:
            return bool(keys & self.selected)
        return True

    def severity_for(self, rule: "Rule") -> Severity:
        for key in self._keys(rule):
            if key in self.severity_overrides:
                return self.severity_overrides[key]
        return rule.severity


#: The out-of-the-box configuration: every rule on, default severities.
DEFAULT_CONFIG = LintConfig()
