"""Source model: what a rule sees when it analyzes one component.

A :class:`ComponentUnit` pairs a live component class (carrying its embedded
``__tspec__``) with the parsed AST of every class along its MRO, so rules can
cross-check the *declared* interface (:class:`~repro.tspec.model.ClassSpec`)
against the *written* one (``ast`` nodes) without re-reading files.

Parsing is cached per Python module in a :class:`SourceCache` shared by all
units of a run; the cache also extracts module-level names (for contract
name resolution) and ``# concat-lint: disable=…`` suppression directives.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..tspec.model import ClassSpec, MethodSpec

#: Methods belonging to the built-in-test machinery (Figure 4), never part
#: of the component's own public interface.
BIT_METHOD_NAMES = frozenset(
    {"class_invariant", "bit_state", "invariant_test", "reporter"}
)

#: Names every module defines implicitly.
IMPLICIT_MODULE_NAMES = frozenset(
    {"__name__", "__file__", "__doc__", "__spec__", "__package__",
     "__loader__", "__builtins__"}
)

BUILTIN_NAMES = frozenset(dir(builtins))

#: ``# concat-lint: disable=CL001,spec-unknown-method -- justification``
_SUPPRESSION_RE = re.compile(
    r"#\s*concat-lint:\s*disable=([A-Za-z0-9_,\-\s]+?)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline suppression directive."""

    rules: Tuple[str, ...]          # lower-cased rule ids/names
    justification: Optional[str]

    def covers(self, rule_id: str, rule_name: str) -> bool:
        keys = {rule_id.lower(), rule_name.lower()}
        return bool(keys & set(self.rules))


class ModuleInfo:
    """Parsed view of one Python module: AST, globals, suppressions."""

    def __init__(self, module):
        self.module = module
        self.name: str = module.__name__
        self.path: str = getattr(module, "__file__", "") or f"<{self.name}>"
        self.source: str = inspect.getsource(module)
        self.tree: ast.Module = ast.parse(self.source)
        self.global_names: Set[str] = _module_global_names(self.tree)
        self.suppressions: Dict[int, Suppression] = _scan_suppressions(self.source)
        self.class_nodes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in self.tree.body
            if isinstance(node, ast.ClassDef)
        }

    def class_node(self, class_name: str) -> Optional[ast.ClassDef]:
        return self.class_nodes.get(class_name)


class SourceCache:
    """Per-run cache of :class:`ModuleInfo` records, keyed by module name."""

    def __init__(self):
        self._by_name: Dict[str, Optional[ModuleInfo]] = {}

    def for_module(self, module) -> Optional[ModuleInfo]:
        name = module.__name__
        if name not in self._by_name:
            try:
                self._by_name[name] = ModuleInfo(module)
            except (OSError, TypeError, SyntaxError):
                self._by_name[name] = None
        return self._by_name[name]

    def for_class(self, klass: type) -> Optional[ModuleInfo]:
        module = inspect.getmodule(klass)
        if module is None:
            return None
        return self.for_module(module)


@dataclass(frozen=True)
class MethodInfo:
    """One resolved method definition: where the ``def`` actually lives."""

    pyname: str                 # runtime name (``__init__``, ``AddHead``, …)
    node: ast.FunctionDef
    module: ModuleInfo
    class_name: str             # defining class (may be a base class)
    inherited: bool             # True when defined above the component class

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def path(self) -> str:
        return self.module.path


@dataclass(frozen=True)
class AttributeStore:
    """One ``self.<attr> = …`` store site found in a method body."""

    attr: str
    line: int
    module: ModuleInfo
    method: str                  # name of the enclosing function
    class_name: str
    value: Optional[ast.expr]    # RHS for simple single-target assigns, else None

    @property
    def path(self) -> str:
        return self.module.path


class ComponentUnit:
    """Everything the rules need to analyze one self-testable component."""

    def __init__(self, klass: type, spec: ClassSpec, cache: SourceCache):
        self.klass = klass
        self.spec = spec
        self.cache = cache
        self.module: Optional[ModuleInfo] = cache.for_class(klass)
        self.class_node: Optional[ast.ClassDef] = (
            self.module.class_node(klass.__name__) if self.module else None
        )
        self.methods: Dict[str, MethodInfo] = {}
        self.attribute_stores: List[AttributeStore] = []
        self._collect_mro()

    # -- identity ----------------------------------------------------------

    @property
    def class_name(self) -> str:
        return self.klass.__name__

    @property
    def path(self) -> str:
        return self.module.path if self.module else f"<{self.class_name}>"

    @property
    def class_line(self) -> int:
        return self.class_node.lineno if self.class_node is not None else 1

    # -- MRO harvesting ----------------------------------------------------

    def _collect_mro(self) -> None:
        """Harvest method defs and attribute stores along the class's MRO."""
        own_name = self.klass.__name__
        for klass in self.klass.__mro__:
            if klass is object:
                continue
            info = self.cache.for_class(klass)
            if info is None:
                continue
            node = info.class_node(klass.__name__)
            if node is None:
                continue
            for statement in node.body:
                if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if statement.name not in self.methods:  # first in MRO wins
                    self.methods[statement.name] = MethodInfo(
                        pyname=statement.name,
                        node=statement,
                        module=info,
                        class_name=klass.__name__,
                        inherited=klass.__name__ != own_name,
                    )
                self.attribute_stores.extend(
                    _attribute_stores(statement, info, klass.__name__)
                )

    # -- spec/source name mapping -----------------------------------------

    def pyname_for(self, method: MethodSpec) -> str:
        """Runtime name a spec method record maps to.

        Constructors are named after the class and map to ``__init__``;
        destructors are named ``~Class`` and map to ``__del__`` (which
        Python components usually leave synthetic).
        """
        if method.is_constructor:
            return "__init__"
        if method.is_destructor:
            return "__del__"
        return method.name

    def resolve(self, method: MethodSpec) -> Optional[MethodInfo]:
        return self.methods.get(self.pyname_for(method))

    def own_public_methods(self) -> List[MethodInfo]:
        """Public (non-BIT, non-dunder) methods defined in the class body."""
        found: List[MethodInfo] = []
        for info in self.methods.values():
            if info.inherited:
                continue
            name = info.pyname
            if name.startswith("_") or name in BIT_METHOD_NAMES:
                continue
            if _is_property(info.node):
                continue
            found.append(info)
        return sorted(found, key=lambda m: m.line)

    # -- suppression -------------------------------------------------------

    def suppression_at(self, rule_id: str, rule_name: str, path: str,
                       line: int) -> Optional[Suppression]:
        """Directive covering a finding: on its line or on the class line."""
        candidates: List[Tuple[ModuleInfo, int]] = []
        for info in self._modules():
            if info.path == path:
                candidates.append((info, line))
        if self.module is not None:
            candidates.append((self.module, self.class_line))
        for info, candidate_line in candidates:
            directive = info.suppressions.get(candidate_line)
            if directive is not None and directive.covers(rule_id, rule_name):
                return directive
        return None

    def _modules(self) -> List[ModuleInfo]:
        seen: Dict[str, ModuleInfo] = {}
        if self.module is not None:
            seen[self.module.name] = self.module
        for info in self.methods.values():
            seen.setdefault(info.module.name, info.module)
        return list(seen.values())


def units_from_module(module, cache: Optional[SourceCache] = None,
                      ) -> List[ComponentUnit]:
    """Component units for every class *defined in* ``module`` that carries
    an embedded t-spec (``__tspec__`` in its own ``__dict__``)."""
    cache = cache or SourceCache()
    units: List[ComponentUnit] = []
    for value in vars(module).values():
        if not inspect.isclass(value):
            continue
        if value.__module__ != module.__name__:
            continue
        spec = value.__dict__.get("__tspec__")
        if not isinstance(spec, ClassSpec):
            continue
        units.append(ComponentUnit(value, spec, cache))
    units.sort(key=lambda unit: unit.class_line)
    return units


# ---------------------------------------------------------------------------
# AST helpers shared by the rule modules
# ---------------------------------------------------------------------------


def _is_property(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in ("property",
                                                                "cached_property"):
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
                "setter", "getter", "deleter", "cached_property"):
            return True
    return False


def _attribute_stores(function: ast.FunctionDef, module: ModuleInfo,
                      class_name: str) -> Iterable[AttributeStore]:
    """All ``self.<attr>`` store sites in one method body."""
    stores: List[AttributeStore] = []
    simple_values: Dict[int, ast.expr] = {}
    for node in ast.walk(function):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)):
            simple_values[id(node.targets[0])] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Attribute):
            if node.value is not None:
                simple_values[id(node.target)] = node.value
    for node in ast.walk(function):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            stores.append(
                AttributeStore(
                    attr=node.attr,
                    line=node.lineno,
                    module=module,
                    method=function.name,
                    class_name=class_name,
                    value=simple_values.get(id(node)),
                )
            )
    return stores


def _scan_suppressions(source: str) -> Dict[int, Suppression]:
    directives: Dict[int, Suppression] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            part.strip().lower()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if rules:
            directives[lineno] = Suppression(rules=rules,
                                             justification=match.group("why"))
    return directives


def _module_global_names(tree: ast.Module) -> Set[str]:
    """Names bound at module level (recursing into top-level compound
    statements but not into function or class bodies)."""
    names: Set[str] = set(IMPLICIT_MODULE_NAMES)

    def collect_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                names.add(statement.name)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    collect_target(target)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                collect_target(statement.target)
            elif isinstance(statement, (ast.If, ast.Try, ast.While)):
                for block in _blocks_of(statement):
                    walk(block)
            elif isinstance(statement, ast.For):
                collect_target(statement.target)
                walk(statement.body)
                walk(statement.orelse)
            elif isinstance(statement, ast.With):
                for item in statement.items:
                    if item.optional_vars is not None:
                        collect_target(item.optional_vars)
                walk(statement.body)

    walk(tree.body)
    return names


def _blocks_of(statement) -> List[list]:
    blocks = [getattr(statement, "body", [])]
    blocks.append(getattr(statement, "orelse", []))
    blocks.append(getattr(statement, "finalbody", []))
    for handler in getattr(statement, "handlers", []):
        blocks.append(handler.body)
    return blocks


def free_names(expression: ast.expr) -> Set[str]:
    """Load-context names in ``expression`` not bound inside it.

    Understands lambda parameters, comprehension targets, and walrus
    bindings; used to check that contract predicates only reference names
    that resolve at runtime.
    """
    free: Set[str] = set()

    def visit(node: ast.AST, bound: Set[str]) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id not in bound:
                free.add(node.id)
            return
        if isinstance(node, ast.Lambda):
            arguments = node.args
            inner = set(bound)
            for argument in (list(arguments.posonlyargs) + list(arguments.args)
                             + list(arguments.kwonlyargs)):
                inner.add(argument.arg)
            if arguments.vararg is not None:
                inner.add(arguments.vararg.arg)
            if arguments.kwarg is not None:
                inner.add(arguments.kwarg.arg)
            for default in list(arguments.defaults) + [
                    d for d in arguments.kw_defaults if d is not None]:
                visit(default, bound)
            visit(node.body, inner)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            inner = set(bound)
            for comprehension in node.generators:
                visit(comprehension.iter, inner)
                for name in ast.walk(comprehension.target):
                    if isinstance(name, ast.Name):
                        inner.add(name.id)
                for condition in comprehension.ifs:
                    visit(condition, inner)
            if isinstance(node, ast.DictComp):
                visit(node.key, inner)
                visit(node.value, inner)
            else:
                visit(node.elt, inner)
            return
        if isinstance(node, ast.NamedExpr):
            visit(node.value, bound)
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, bound)

    visit(expression, set())
    return free


def function_scope_names(function: ast.FunctionDef) -> Set[str]:
    """Parameters plus every name assigned anywhere in a function body."""
    arguments = function.args
    names: Set[str] = {
        argument.arg
        for argument in (list(arguments.posonlyargs) + list(arguments.args)
                         + list(arguments.kwonlyargs))
    }
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                     (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not function:
            names.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


@dataclass(frozen=True)
class DefSignature:
    """Call-shape of a ``def``: bounds on positional-argument count."""

    required: int
    maximum: Optional[int]      # None when the def takes *args
    parameter_names: Tuple[str, ...]

    def accepts(self, arity: int) -> bool:
        if arity < self.required:
            return False
        return self.maximum is None or arity <= self.maximum

    def describe(self) -> str:
        if self.maximum is None:
            return f"{self.required}+ args (*varargs)"
        if self.required == self.maximum:
            return f"{self.required} args"
        return f"{self.required}..{self.maximum} args"


def def_signature(function: ast.FunctionDef, drop_self: bool = True,
                  ) -> DefSignature:
    """Positional-argument bounds of a ``def`` (``self`` excluded)."""
    arguments = function.args
    positional = list(arguments.posonlyargs) + list(arguments.args)
    names = [argument.arg for argument in positional]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    required = max(0, len(names) - len(arguments.defaults))
    maximum: Optional[int] = len(names)
    if arguments.vararg is not None:
        maximum = None
    return DefSignature(required=required, maximum=maximum,
                        parameter_names=tuple(names))


def literal_value(expression: ast.expr) -> Tuple[bool, Any]:
    """``(True, value)`` when the expression is a literal constant
    (including unary ``-``/``+`` on a numeric constant), else ``(False, None)``."""
    if isinstance(expression, ast.Constant):
        return True, expression.value
    if (isinstance(expression, ast.UnaryOp)
            and isinstance(expression.op, (ast.USub, ast.UAdd))
            and isinstance(expression.operand, ast.Constant)
            and isinstance(expression.operand.value, (int, float))
            and not isinstance(expression.operand.value, bool)):
        value = expression.operand.value
        return True, -value if isinstance(expression.op, ast.USub) else +value
    return False, None
