"""Target discovery: turn CLI arguments into imported component modules.

Accepts three spellings:

* a **directory** — every ``*.py`` file under it (recursively) is a target;
* a **file** — that one module;
* a **dotted module path** (``repro.components.stack``) — imported directly.

Files inside a package (an ``__init__.py`` chain) are imported under their
real dotted name so package ``__init__`` side effects run — crucially, the
components package attaches ``__tspec__`` in its ``__init__``.  Loose files
(e.g. test fixtures) are imported by location.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path
from types import ModuleType
from typing import Iterable, List

from ..core.errors import ReproError


class TargetError(ReproError):
    """A lint target could not be resolved or imported."""


def resolve_targets(arguments: Iterable[str]) -> List[Path]:
    """Expand CLI arguments into concrete ``.py`` file paths."""
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(
                sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if candidate.name != "__init__.py"
                    and "__pycache__" not in candidate.parts
                )
            )
        elif path.is_file():
            files.append(path)
        elif _looks_dotted(argument):
            module = import_dotted(argument)
            origin = getattr(module, "__file__", None)
            if origin is None:
                raise TargetError(f"module {argument!r} has no source file")
            files.append(Path(origin))
        else:
            raise TargetError(f"no such file, directory, or module: {argument!r}")
    return files


def _looks_dotted(argument: str) -> bool:
    return all(part.isidentifier() for part in argument.split("."))


def import_dotted(dotted: str) -> ModuleType:
    try:
        return importlib.import_module(dotted)
    except ImportError as error:
        raise TargetError(f"cannot import module {dotted!r}: {error}") from error


def load_module(file: Path) -> ModuleType:
    """Import one source file, preferring its real package identity."""
    file = file.resolve()
    dotted = _dotted_name_for(file)
    if dotted is not None:
        root_parent = str(_package_root(file).parent)
        if root_parent not in sys.path:
            sys.path.insert(0, root_parent)
        try:
            return importlib.import_module(dotted)
        except ImportError as error:
            raise TargetError(
                f"cannot import {file} as {dotted!r}: {error}"
            ) from error
    alias = f"_concat_lint_{file.stem}"
    if alias in sys.modules:
        return sys.modules[alias]
    spec = importlib.util.spec_from_file_location(alias, file)
    if spec is None or spec.loader is None:
        raise TargetError(f"cannot load {file}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[alias] = module
    try:
        spec.loader.exec_module(module)
    except Exception as error:
        sys.modules.pop(alias, None)
        raise TargetError(f"error importing {file}: {error}") from error
    return module


def _dotted_name_for(file: Path) -> str | None:
    """``src/repro/components/stack.py`` → ``repro.components.stack``."""
    if (file.parent / "__init__.py").exists():
        root = _package_root(file)
        relative = file.relative_to(root.parent).with_suffix("")
        return ".".join(relative.parts)
    return None


def _package_root(file: Path) -> Path:
    """Topmost directory in the ``__init__.py`` chain containing ``file``."""
    current = file.parent
    while (current.parent / "__init__.py").exists():
        current = current.parent
    return current
