"""The ``concat-lint`` rule registry.

Each rule is a small object with a stable id (``CL###``), a readable slug, a
default severity, and a :meth:`Rule.check` that inspects one
:class:`~repro.analysis.unit.ComponentUnit` and yields findings.  Rules
register themselves with the :func:`register` decorator at import time; the
rule modules are imported lazily by :func:`default_registry` so importing
:mod:`repro.analysis` stays cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, TYPE_CHECKING

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from .unit import ComponentUnit


class Rule:
    """Base class of all conformance rules.

    Subclasses set the class attributes and implement :meth:`check`.  The
    severity recorded on emitted findings is the *default*; the runner
    re-labels findings when the config overrides a rule's severity.
    """

    #: Stable short id, e.g. ``CL001``.  Never reuse a retired id.
    id: str = "CL000"
    #: Readable kebab-case slug, e.g. ``spec-missing-method``.
    name: str = "abstract-rule"
    #: Default severity of this rule's findings.
    severity: Severity = Severity.WARNING
    #: One-line description for ``--list-rules`` and SARIF rule metadata.
    summary: str = ""

    def check(self, unit: "ComponentUnit") -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def finding(self, unit: "ComponentUnit", line: int, message: str,
                path: Optional[str] = None) -> Finding:
        """Build a finding anchored in the unit's defining file by default."""
        return Finding(
            rule_id=self.id,
            rule_name=self.name,
            severity=self.severity,
            path=path or unit.path,
            line=line,
            message=message,
            component=unit.class_name,
        )


class RuleRegistry:
    """Ordered, addressable collection of rules."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: List[Rule] = []
        self._by_key: Dict[str, Rule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        for key in (rule.id.lower(), rule.name.lower()):
            if key in self._by_key:
                raise ValueError(f"duplicate rule key {key!r}")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.id)
        self._by_key[rule.id.lower()] = rule
        self._by_key[rule.name.lower()] = rule

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def by_key(self, key: str) -> Rule:
        try:
            return self._by_key[key.strip().lower()]
        except KeyError:
            raise KeyError(f"unknown rule {key!r}") from None

    def known_keys(self) -> List[str]:
        return sorted(self._by_key)

    def table(self) -> List[Dict[str, str]]:
        """Rows for ``--list-rules`` and the README rule table."""
        return [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity.value,
                "summary": rule.summary,
            }
            for rule in self._rules
        ]


#: Rules annotated with :func:`register` land here at module import time.
_REGISTERED: List[Rule] = []


def register(cls):
    """Class decorator: instantiate the rule and record it for the registry."""
    _REGISTERED.append(cls())
    return cls


def default_registry() -> RuleRegistry:
    """The full shipped rule suite (imports rule modules on first use)."""
    from . import rules_contracts  # noqa: F401
    from . import rules_interface  # noqa: F401
    from . import rules_model  # noqa: F401
    from . import rules_mutation  # noqa: F401

    return RuleRegistry(_REGISTERED)
