"""``concat-lint``: static conformance analysis for self-testable components.

The paper's central claim (sec. 3.2-(vii)) is that embedding the t-spec in
the component lets a tester detect "incompleteness, ambiguity and
inconsistency".  The rest of this repository discovers source/spec drift
*dynamically*, at driver-execution time; this subsystem closes the gap
statically, cross-checking the component's Python AST against its declared
:class:`~repro.tspec.model.ClassSpec` and transaction flow model before any
test runs.

Public surface:

* :func:`lint_paths` / :func:`lint_units` — run the rule suite;
* :class:`LintConfig` — per-rule enable/disable and severity overrides;
* :class:`Finding` / :class:`LintResult` / :class:`Severity` — results;
* :func:`default_registry` — the shipped rule suite (``CL001``–``CL011``);
* ``python -m repro.analysis`` — the command line (see :mod:`.cli`).

Inline suppression: append ``# concat-lint: disable=CL001 -- reason`` to the
offending line (or the ``class`` line to cover a whole component).
"""

from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding, LintResult, Severity
from .registry import Rule, RuleRegistry, default_registry, register
from .report import render_json, render_sarif, render_text
from .runner import lint_paths, lint_units
from .unit import ComponentUnit, SourceCache, units_from_module

__all__ = [
    "ComponentUnit",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SourceCache",
    "default_registry",
    "lint_paths",
    "lint_units",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "units_from_module",
]
