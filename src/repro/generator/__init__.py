"""Driver Generator: value sampling, test cases, suites, and driver codegen."""

from .codegen import generate_driver_source
from .driver import DriverGenerator, generate_suite
from .suite import TestSuite
from .testcase import TestCase, TestCaseCounter, TestStep
from .values import Hole, TypeBinding, ValueSampler, is_hole

__all__ = [
    "DriverGenerator",
    "Hole",
    "TestCase",
    "TestCaseCounter",
    "TestStep",
    "TestSuite",
    "TypeBinding",
    "ValueSampler",
    "generate_driver_source",
    "generate_suite",
    "is_hole",
]
