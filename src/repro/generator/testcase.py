"""Test case model: what the Driver Generator produces.

A test case (Figure 6 of the paper) "exercises a path containing sequences
of methods corresponding to the creation, processing and destruction of an
object":

* a **construction step** — which constructor alternative, with which
  argument values;
* zero or more **processing steps** — one method call each, with argument
  values;
* implicit **destruction** — the harness deletes the object at the end
  (Python: drops the last reference and, when the component defines an
  explicit teardown method named by its destructor spec, calls it).

Steps may contain :class:`~repro.generator.values.Hole` placeholders for
structured parameters; a test case with holes is *incomplete* and cannot
execute until :meth:`TestCase.complete` fills them (sec. 3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..core.errors import IncompleteTestCaseError
from ..core.rng import ReproRandom
from ..tfm.transactions import Transaction
from .values import Hole, is_hole


@dataclass(frozen=True)
class TestStep:
    """One method invocation within a test case."""
    __test__ = False  # library class, not a pytest test


    method_ident: str
    method_name: str
    arguments: Tuple[Any, ...] = ()
    node_ident: str = ""
    is_construction: bool = False
    is_destruction: bool = False

    @property
    def holes(self) -> Tuple[Hole, ...]:
        return tuple(argument for argument in self.arguments if is_hole(argument))

    @property
    def is_complete(self) -> bool:
        return not self.holes

    def format(self) -> str:
        rendered: List[str] = []
        for argument in self.arguments:
            rendered.append(argument.describe() if is_hole(argument) else repr(argument))
        call = f"{self.method_name}({', '.join(rendered)})"
        if self.is_construction:
            return f"new {call}"
        if self.is_destruction:
            return f"delete [{self.method_name}]"
        return call


@dataclass(frozen=True)
class TestCase:
    """A generated test case: one transaction with bound argument values."""
    __test__ = False  # library class, not a pytest test


    ident: str                     # "TC0", "TC1", … (Figure 6 naming)
    transaction: Transaction
    steps: Tuple[TestStep, ...]
    class_name: str
    seed: int = 0                  # per-case RNG salt, for regeneration
    origin: str = "new"            # "new" or "reused" (sec. 3.4.2 provenance)

    def __post_init__(self):
        if not self.steps:
            raise ValueError(f"test case {self.ident} has no steps")
        if not self.steps[0].is_construction:
            raise ValueError(f"test case {self.ident} does not start with construction")

    # -- structure ----------------------------------------------------------

    @property
    def construction(self) -> TestStep:
        return self.steps[0]

    @property
    def processing_steps(self) -> Tuple[TestStep, ...]:
        return tuple(
            step for step in self.steps[1:] if not step.is_destruction
        )

    @property
    def destruction(self) -> Optional[TestStep]:
        last = self.steps[-1]
        return last if last.is_destruction else None

    @property
    def method_names(self) -> Tuple[str, ...]:
        return tuple(step.method_name for step in self.steps)

    def __iter__(self) -> Iterator[TestStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    # -- holes (structured parameters) ---------------------------------------

    @property
    def holes(self) -> Tuple[Tuple[int, Hole], ...]:
        """(step index, hole) pairs still awaiting manual completion."""
        found: List[Tuple[int, Hole]] = []
        for index, step in enumerate(self.steps):
            for hole in step.holes:
                found.append((index, hole))
        return tuple(found)

    @property
    def is_complete(self) -> bool:
        return not self.holes

    def require_complete(self) -> None:
        holes = self.holes
        if holes:
            summary = ", ".join(
                f"step {index} {hole.describe()}" for index, hole in holes
            )
            raise IncompleteTestCaseError(
                f"test case {self.ident} has unbound structured parameters: {summary}"
            )

    def complete(self, fill: Callable[[Hole, ReproRandom], Any],
                 rng: Optional[ReproRandom] = None) -> "TestCase":
        """Fill every hole via ``fill(hole, rng)``; returns a new test case."""
        case_rng = rng or ReproRandom(self.seed)
        new_steps: List[TestStep] = []
        for step in self.steps:
            if step.is_complete:
                new_steps.append(step)
                continue
            new_arguments = tuple(
                fill(argument, case_rng) if is_hole(argument) else argument
                for argument in step.arguments
            )
            new_steps.append(replace(step, arguments=new_arguments))
        return replace(self, steps=tuple(new_steps))

    # -- presentation ---------------------------------------------------------

    def format(self) -> str:
        lines = [f"{self.ident} [{self.class_name}] transaction {self.transaction}"]
        for step in self.steps:
            lines.append(f"    {step.format()}")
        return "\n".join(lines)


@dataclass
class TestCaseCounter:
    """Stable TC numbering across generation batches (Figure 6: TestCase0…)."""

    __test__ = False  # library class, not a pytest test

    next_number: int = 0
    prefix: str = "TC"

    def next_ident(self) -> str:
        ident = f"{self.prefix}{self.next_number}"
        self.next_number += 1
        return ident
