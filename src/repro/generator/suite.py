"""Test suites: collections of generated test cases.

"The (specific) *driver* is an executable test suite.  Therefore, test cases
can be used in different test suites.  A test suite is considered as
'executable' after being completed with the values of structured parameter
types as well as any global data and stubs" (sec. 3.4.1, Figure 7).

A :class:`TestSuite` is an immutable value: filtering, merging and hole
completion all return new suites, so the incremental-reuse machinery can
derive a subclass suite from a parent suite without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.fingerprint import canonical, sha256_hex
from ..core.rng import ReproRandom
from ..tfm.transactions import Transaction
from .testcase import TestCase
from .values import Hole, TypeBinding


@dataclass(frozen=True)
class TestSuite:
    """An ordered collection of test cases for one component class."""

    __test__ = False  # library class, not a pytest test

    class_name: str
    cases: Tuple[TestCase, ...]
    seed: int = 0
    edge_bound: int = 1
    transactions_total: int = 0
    truncated: bool = False

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self.cases)

    def __getitem__(self, index) -> TestCase:
        return self.cases[index]

    # -- views ------------------------------------------------------------

    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """Distinct transactions exercised, in first-appearance order."""
        seen: Set[str] = set()
        ordered: List[Transaction] = []
        for case in self.cases:
            if case.transaction.ident not in seen:
                seen.add(case.transaction.ident)
                ordered.append(case.transaction)
        return tuple(ordered)

    @property
    def new_cases(self) -> Tuple[TestCase, ...]:
        return tuple(case for case in self.cases if case.origin == "new")

    @property
    def reused_cases(self) -> Tuple[TestCase, ...]:
        return tuple(case for case in self.cases if case.origin == "reused")

    @property
    def incomplete_cases(self) -> Tuple[TestCase, ...]:
        return tuple(case for case in self.cases if not case.is_complete)

    @property
    def is_executable(self) -> bool:
        """Executable once every structured parameter is completed (Fig. 7)."""
        return not self.incomplete_cases

    def cases_for_transaction(self, transaction: Transaction) -> Tuple[TestCase, ...]:
        return tuple(
            case for case in self.cases
            if case.transaction.ident == transaction.ident
        )

    # -- derivation ---------------------------------------------------------

    def filtered(self, keep: Callable[[TestCase], bool]) -> "TestSuite":
        return replace(self, cases=tuple(case for case in self.cases if keep(case)))

    def without_transactions(self, idents: Sequence[str]) -> "TestSuite":
        dropped = set(idents)
        return self.filtered(lambda case: case.transaction.ident not in dropped)

    def only_transactions(self, idents: Sequence[str]) -> "TestSuite":
        kept = set(idents)
        return self.filtered(lambda case: case.transaction.ident in kept)

    def merged_with(self, other: "TestSuite") -> "TestSuite":
        """Concatenate suites (used to join reused + new subclass cases).

        Case idents must not collide; the merged suite keeps this suite's
        metadata and flags truncation when either side was truncated.
        """
        mine = {case.ident for case in self.cases}
        collisions = [case.ident for case in other.cases if case.ident in mine]
        if collisions:
            raise ValueError(
                f"cannot merge suites: duplicate test case idents {collisions[:5]}"
            )
        return replace(
            self,
            cases=self.cases + other.cases,
            transactions_total=max(self.transactions_total, other.transactions_total),
            truncated=self.truncated or other.truncated,
        )

    def marked_reused(self) -> "TestSuite":
        """All cases re-tagged as reused (parent cases adopted by a subclass)."""
        return replace(
            self,
            cases=tuple(replace(case, origin="reused") for case in self.cases),
        )

    def renumbered(self, prefix: str) -> "TestSuite":
        """Re-ident cases with a new prefix (avoids merge collisions)."""
        renamed = tuple(
            replace(case, ident=f"{prefix}{number}")
            for number, case in enumerate(self.cases)
        )
        return replace(self, cases=renamed)

    def completed(self, bindings: TypeBinding,
                  rng: Optional[ReproRandom] = None) -> "TestSuite":
        """Fill structured holes using tester-provided factories.

        This is the "completing the executable test suite" step of
        Figure 7: every hole whose class name has a bound factory is filled;
        a hole without a factory is left in place (the suite stays
        non-executable and says so).
        """
        base_rng = rng or ReproRandom(self.seed)

        def fill(hole: Hole, case_rng: ReproRandom):
            factory = bindings.factory_for(hole.class_name)
            if factory is None:
                return hole
            return factory(case_rng)

        completed_cases = tuple(
            case if case.is_complete else case.complete(fill, base_rng.fork(index))
            for index, case in enumerate(self.cases)
        )
        return replace(self, cases=completed_cases)

    # -- identity -------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 content hash of the suite, stable across processes.

        Derived purely from the suite's *value* — class name, seed, bounds,
        and every case's transaction, steps and argument values (via
        :func:`repro.core.fingerprint.canonical`, which never encodes
        object identity or wall-clock).  Two suites generated from the same
        spec and seed therefore share a fingerprint, and a suite that
        round-trips pickling keeps its fingerprint — the property the
        mutation outcome cache keys on.
        """
        return sha256_hex("testsuite", canonical(self))

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "cases": len(self.cases),
            "new": len(self.new_cases),
            "reused": len(self.reused_cases),
            "incomplete": len(self.incomplete_cases),
            "transactions": len(self.transactions),
        }

    def summary(self) -> str:
        counts = self.stats()
        note = " [TRUNCATED ENUMERATION]" if self.truncated else ""
        return (
            f"suite for {self.class_name}: {counts['cases']} test cases "
            f"({counts['new']} new, {counts['reused']} reused) over "
            f"{counts['transactions']} transactions; "
            f"{counts['incomplete']} incomplete{note}"
        )
