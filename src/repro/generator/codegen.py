"""Driver source-code generation (Figures 6 and 7 of the paper).

Concat emits each test case as a C++ template function (``TestCase0`` …)
and a driver ``main`` that instantiates the component under test, runs the
test cases inside try-blocks, checks the invariant around every call, logs
to ``Result.txt`` and reports the object state on failure.

:func:`generate_driver_source` emits the Python equivalent: a standalone
module with one function per test case plus a ``run_all`` entry point.  The
generated code depends only on the component (and ``repro`` for test mode),
so a consumer can read exactly what their component will be subjected to —
the understandability argument of sec. 3.2.

Literal argument values are embedded with ``repr``; non-literal values
(objects built by factories, unfilled holes) become entries of a ``FIXTURES``
dictionary at the top of the module that the tester completes manually —
the codegen analogue of completing structured parameters (sec. 3.4.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .suite import TestSuite
from .testcase import TestCase
from .values import is_hole

_LITERALS = (bool, int, float, str, bytes, type(None))


def _is_literal(value: Any) -> bool:
    if isinstance(value, _LITERALS):
        return True
    if isinstance(value, (tuple, list)):
        return all(_is_literal(item) for item in value)
    return False


def _function_name(case: TestCase) -> str:
    return f"test_case_{case.ident.lower()}"


def generate_driver_source(suite: TestSuite,
                           component_module: str,
                           component_class: str,
                           log_path: str = "Result.txt") -> str:
    """Render the executable driver module for a suite.

    ``component_module``/``component_class`` say where the CUT lives; the
    driver imports it, so the generated file runs with ``python driver.py``.
    """
    fixtures: Dict[str, str] = {}
    case_sources: List[str] = []
    for case in suite.cases:
        case_sources.append(_render_case(case, fixtures))

    lines: List[str] = []
    lines.append('"""Auto-generated test driver (PyConcat Driver Generator).')
    lines.append("")
    lines.append(f"Component under test: {component_module}.{component_class}")
    lines.append(f"Suite seed: {suite.seed}; edge bound: {suite.edge_bound}; "
                 f"{len(suite.cases)} test cases.")
    lines.append('"""')
    lines.append("")
    lines.append(f"from {component_module} import {component_class}")
    lines.append("from repro.bit import test_mode")
    lines.append("from repro.core.errors import ContractViolation")
    lines.append("")
    lines.append("# Structured parameters the tester must complete manually")
    lines.append("# (sec. 3.4.1: objects, arrays and pointers).")
    lines.append("FIXTURES = {")
    for key, description in sorted(fixtures.items()):
        lines.append(f"    {key!r}: None,  # {description}")
    lines.append("}")
    lines.append("")
    lines.append(_HELPER_SOURCE)
    lines.append("")
    lines.extend(case_sources)
    lines.append(_render_run_all(suite, component_class, log_path))
    return "\n".join(lines)


_HELPER_SOURCE = '''\
def _log(log_file, message):
    log_file.write(message + "\\n")
    log_file.flush()


def _invariant(cut):
    checker = getattr(cut, "invariant_test", None)
    if callable(checker):
        checker()


def _report(cut, log_file):
    reporter = getattr(cut, "reporter", None)
    if callable(reporter):
        log_file.write(reporter().format() + "\\n")
        log_file.flush()
'''


def _render_case(case: TestCase, fixtures: Dict[str, str]) -> str:
    lines: List[str] = []
    lines.append(f"def {_function_name(case)}(cut_class, log_file):")
    lines.append(f'    """Transaction: {case.transaction}"""')
    lines.append('    current_method = "<none>"')
    lines.append("    try:")

    construction = case.construction
    args = _render_arguments(case, 0, construction.arguments, fixtures)
    lines.append(f'        current_method = "{construction.method_name}({args})"')
    lines.append(f"        cut = cut_class({args})")
    lines.append("        _invariant(cut)")

    step_index = 0
    for step in case.steps[1:]:
        step_index += 1
        if step.is_destruction:
            continue
        args = _render_arguments(case, step_index, step.arguments, fixtures)
        lines.append(f'        current_method = "{step.method_name}({args})"')
        lines.append(f"        cut.{step.method_name}({args})")
        lines.append("        _invariant(cut)")

    lines.append(f'        _log(log_file, "{case.ident} OK!")')
    lines.append("        _report(cut, log_file)")
    lines.append("        del cut")
    lines.append("        return True")
    lines.append("    except ContractViolation as violation:")
    lines.append(f'        _log(log_file, "{case.ident} FAILED")')
    lines.append('        _log(log_file, str(violation))')
    lines.append('        _log(log_file, "Method called: " + current_method)')
    lines.append("        return False")
    lines.append("")
    return "\n".join(lines)


def _render_arguments(case: TestCase, step_index: int,
                      arguments: Tuple[Any, ...],
                      fixtures: Dict[str, str]) -> str:
    rendered: List[str] = []
    for position, argument in enumerate(arguments):
        if is_hole(argument):
            key = f"{case.ident}.step{step_index}.arg{position}"
            fixtures[key] = argument.describe()
            rendered.append(f"FIXTURES[{key!r}]")
        elif _is_literal(argument):
            rendered.append(repr(argument))
        else:
            key = f"{case.ident}.step{step_index}.arg{position}"
            fixtures[key] = f"instance of {type(argument).__name__}"
            rendered.append(f"FIXTURES[{key!r}]")
    return ", ".join(rendered)


def _render_run_all(suite: TestSuite, component_class: str, log_path: str) -> str:
    names = [_function_name(case) for case in suite.cases]
    lines: List[str] = []
    lines.append("")
    lines.append("ALL_TEST_CASES = [")
    for name in names:
        lines.append(f"    {name},")
    lines.append("]")
    lines.append("")
    lines.append(f'def run_all(cut_class={component_class}, log_path={log_path!r}):')
    lines.append('    """Execute every test case; returns (passed, failed)."""')
    lines.append("    passed = failed = 0")
    lines.append('    with test_mode(), open(log_path, "a", encoding="utf-8") as log_file:')
    lines.append("        for case_function in ALL_TEST_CASES:")
    lines.append("            if case_function(cut_class, log_file):")
    lines.append("                passed += 1")
    lines.append("            else:")
    lines.append("                failed += 1")
    lines.append("    return passed, failed")
    lines.append("")
    lines.append('if __name__ == "__main__":')
    lines.append("    ok, bad = run_all()")
    lines.append('    print(f"passed={ok} failed={bad}")')
    lines.append("")
    return "\n".join(lines)
