"""The Driver Generator (sec. 3.4.1 of the paper).

"Test selection is entirely performed by the *Driver Generator* […] The
Driver Generator creates test cases according to the transaction coverage
criterion that requires exercising each individual transaction at least
once."

Pipeline:

1. build the TFM from the component's t-spec and enumerate its transactions
   (bounded, see :mod:`repro.tfm.transactions`);
2. expand each transaction into concrete method sequences — a TFM node lists
   *alternative* methods (e.g. the three ``Product`` constructors in one
   birth node, Figure 3), and the generator emits enough variants per
   transaction that **every alternative of every node occurrence is chosen
   at least once** (round-robin across variants);
3. bind argument values: samplable domains get random members of their valid
   subdomain; structured ones become holes for the tester (sec. 3.4.1).

Generation is deterministic from the suite seed, and each test case records
its own derived seed so a single case can be regenerated in isolation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import GenerationError
from ..core.rng import ReproRandom
from ..tfm.graph import TransactionFlowGraph
from ..tfm.transactions import (
    DEFAULT_EDGE_BOUND,
    DEFAULT_MAX_TRANSACTIONS,
    EnumerationResult,
    Transaction,
    enumerate_transactions,
)
from ..tspec.model import ClassSpec, MethodSpec
from .suite import TestSuite
from .testcase import TestCase, TestCaseCounter, TestStep
from .values import TypeBinding, ValueSampler


class DriverGenerator:
    """Generates an executable test suite from an embedded t-spec."""

    def __init__(self, spec: ClassSpec,
                 seed: Optional[int] = None,
                 bindings: Optional[TypeBinding] = None,
                 edge_bound: int = DEFAULT_EDGE_BOUND,
                 max_transactions: int = DEFAULT_MAX_TRANSACTIONS,
                 boundary_probability: float = 0.0,
                 cover_alternatives: bool = True,
                 extra_variants: int = 0):
        """``extra_variants`` adds that many further test cases per
        transaction beyond alternative coverage, with fresh random data —
        used by the equivalence probe to out-power the main suite."""
        if extra_variants < 0:
            raise GenerationError("extra_variants must be non-negative")
        self._spec = spec
        self._graph = TransactionFlowGraph(spec)
        self._rng = ReproRandom(seed)
        self._bindings = bindings or TypeBinding()
        self._edge_bound = edge_bound
        self._max_transactions = max_transactions
        self._boundary_probability = boundary_probability
        self._cover_alternatives = cover_alternatives
        self._extra_variants = extra_variants

    @property
    def spec(self) -> ClassSpec:
        return self._spec

    @property
    def graph(self) -> TransactionFlowGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def enumerate(self) -> EnumerationResult:
        """The transactions the suite will cover."""
        return enumerate_transactions(
            self._graph,
            edge_bound=self._edge_bound,
            max_transactions=self._max_transactions,
        )

    def generate(self, counter: Optional[TestCaseCounter] = None) -> TestSuite:
        """Produce the full transaction-coverage suite."""
        enumeration = self.enumerate()
        counter = counter or TestCaseCounter()
        cases: List[TestCase] = []
        for transaction in enumeration:
            cases.extend(self.generate_for_transaction(transaction, counter))
        return TestSuite(
            class_name=self._spec.name,
            cases=tuple(cases),
            seed=self._rng.seed,
            edge_bound=self._edge_bound,
            transactions_total=len(enumeration),
            truncated=enumeration.truncated,
        )

    def generate_for_transaction(self, transaction: Transaction,
                                 counter: Optional[TestCaseCounter] = None,
                                 ) -> Tuple[TestCase, ...]:
        """Test cases for one transaction: one per alternative variant."""
        counter = counter or TestCaseCounter()
        alternative_lists = self._alternatives(transaction)
        variants = 1
        if self._cover_alternatives:
            variants = max(len(alternatives) for alternatives in alternative_lists)
        variants += self._extra_variants

        cases: List[TestCase] = []
        for variant in range(variants):
            chosen = tuple(
                alternatives[variant % len(alternatives)]
                for alternatives in alternative_lists
            )
            cases.append(self._build_case(transaction, chosen, counter))
        return tuple(cases)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _alternatives(self, transaction: Transaction) -> Tuple[Tuple[MethodSpec, ...], ...]:
        """Per node occurrence, the method alternatives that realise it."""
        lists: List[Tuple[MethodSpec, ...]] = []
        for node_ident in transaction.path:
            methods = self._graph.node_methods(node_ident)
            if not methods:
                raise GenerationError(
                    f"node {node_ident} of {self._spec.name} has no methods"
                )
            lists.append(methods)
        return tuple(lists)

    def _build_case(self, transaction: Transaction,
                    chosen: Sequence[MethodSpec],
                    counter: TestCaseCounter) -> TestCase:
        ident = counter.next_ident()
        case_seed = self._rng.fork(counter.next_number).seed
        sampler = ValueSampler(
            ReproRandom(case_seed),
            bindings=self._bindings,
            boundary_probability=self._boundary_probability,
        )
        steps: List[TestStep] = []
        for position, (node_ident, method) in enumerate(zip(transaction.path, chosen)):
            arguments = tuple(
                sampler.sample(parameter.name, parameter.domain)
                for parameter in method.parameters
            )
            steps.append(
                TestStep(
                    method_ident=method.ident,
                    method_name=method.name,
                    arguments=arguments,
                    node_ident=node_ident,
                    is_construction=(position == 0 and method.is_constructor),
                    is_destruction=method.is_destructor,
                )
            )
        if not steps or not steps[0].is_construction:
            raise GenerationError(
                f"transaction {transaction} of {self._spec.name} does not begin "
                "with a constructor node"
            )
        return TestCase(
            ident=ident,
            transaction=transaction,
            steps=tuple(steps),
            class_name=self._spec.name,
            seed=case_seed,
        )


def generate_suite(spec: ClassSpec, **options) -> TestSuite:
    """One-call convenience: ``generate_suite(spec, seed=…, bindings=…)``."""
    return DriverGenerator(spec, **options).generate()
