"""Parameter value generation for the Driver Generator.

The paper: "Values of input parameters for each method are also generated,
by randomly selecting a value from the valid subdomain.  Currently, this is
implemented only for numeric types and strings […] Structured type
parameters (including objects, arrays, and pointers) must be completed
manually by the tester" (sec. 3.4.1).

:class:`ValueSampler` reproduces that split:

* samplable domains (range, float range, set, string, bool, and any object/
  pointer domain with a bound factory) yield concrete values;
* structured domains yield a :class:`Hole` — a typed placeholder the tester
  fills before the suite becomes *executable* (sec. 3.4.1, Figure 7).

A :class:`TypeBinding` registry plays the role of the tester "indicating a
set of possible types […] to create an instance" for template classes: it
maps class names to factories, turning structured holes into samplable
domains wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.domains import Domain, ObjectDomain, PointerDomain
from ..core.rng import ReproRandom


@dataclass(frozen=True)
class Hole:
    """A structured parameter the tester must complete manually."""

    parameter: str
    domain: Domain

    @property
    def class_name(self) -> str:
        domain = self.domain
        if isinstance(domain, PointerDomain):
            domain = domain.target
        if isinstance(domain, ObjectDomain):
            return domain.class_name
        return type(domain).__name__

    def describe(self) -> str:
        return f"<hole {self.parameter}: {self.domain.describe()}>"


def is_hole(value: Any) -> bool:
    return isinstance(value, Hole)


class TypeBinding:
    """Tester-provided factories for structured (object/pointer) domains."""

    def __init__(self, factories: Optional[Dict[str, Callable[[ReproRandom], Any]]] = None):
        self._factories: Dict[str, Callable[[ReproRandom], Any]] = dict(factories or {})

    def bind(self, class_name: str, factory: Callable[[ReproRandom], Any]) -> "TypeBinding":
        self._factories[class_name] = factory
        return self

    def factory_for(self, class_name: str) -> Optional[Callable[[ReproRandom], Any]]:
        return self._factories.get(class_name)

    def covers(self, domain: Domain) -> bool:
        if isinstance(domain, PointerDomain):
            return self.covers(domain.target)
        if isinstance(domain, ObjectDomain):
            return domain.factory is not None or domain.class_name in self._factories
        return True

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._factories


class ValueSampler:
    """Draws parameter values from domains, honouring type bindings.

    ``boundary_probability`` mixes boundary values into random sampling —
    an extension the paper's framework admits (its criterion only requires a
    random member of the valid subdomain; boundary mixing is benched as an
    ablation, see DESIGN.md).
    """

    def __init__(self, rng: ReproRandom,
                 bindings: Optional[TypeBinding] = None,
                 boundary_probability: float = 0.0):
        if not 0.0 <= boundary_probability <= 1.0:
            raise ValueError("boundary_probability must be within [0, 1]")
        self._rng = rng
        self._bindings = bindings or TypeBinding()
        self._boundary_probability = boundary_probability

    @property
    def bindings(self) -> TypeBinding:
        return self._bindings

    def sample(self, parameter_name: str, domain: Domain) -> Any:
        """A concrete value, or a :class:`Hole` for unsampleable domains."""
        resolved = self._resolve(domain)
        if resolved.is_structured:
            return Hole(parameter=parameter_name, domain=domain)
        if self._boundary_probability and self._rng.boolean(self._boundary_probability):
            boundaries = resolved.boundary_values()
            if boundaries:
                return self._rng.choice(boundaries)
        return resolved.sample(self._rng)

    def _resolve(self, domain: Domain) -> Domain:
        """Substitute bound factories into object/pointer domains."""
        if isinstance(domain, PointerDomain):
            target = self._resolve(domain.target)
            if isinstance(target, ObjectDomain) and target.factory is not None:
                return PointerDomain(target, domain.null_probability)
            return domain
        if isinstance(domain, ObjectDomain) and domain.factory is None:
            factory = self._bindings.factory_for(domain.class_name)
            if factory is not None:
                return ObjectDomain(domain.class_name, factory)
        return domain

    def can_sample(self, domain: Domain) -> bool:
        return not self._resolve(domain).is_structured
