"""Persistence of testing histories.

"Test history creation, maintenance and retrieval is partially implemented"
in Concat (sec. 3.4); here it is fully implemented as JSON files, one per
class, in a directory-backed store.  The store is what a component producer
ships alongside the component so consumers can extend the history for their
subclasses.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from .model import TestHistory


class HistoryStore:
    """Directory of ``<ClassName>.history.json`` files."""

    SUFFIX = ".history.json"

    def __init__(self, directory: str):
        self._directory = directory
        os.makedirs(directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    def _path_for(self, class_name: str) -> str:
        safe = "".join(c for c in class_name if c.isalnum() or c in "_-")
        if not safe:
            raise ValueError(f"unusable class name {class_name!r}")
        return os.path.join(self._directory, safe + self.SUFFIX)

    def save(self, history: TestHistory) -> str:
        """Write (overwrite) a class's history; returns the file path."""
        path = self._path_for(history.class_name)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(history.as_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        return path

    def load(self, class_name: str) -> TestHistory:
        path = self._path_for(class_name)
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        return TestHistory.from_dict(payload)

    def exists(self, class_name: str) -> bool:
        return os.path.exists(self._path_for(class_name))

    def delete(self, class_name: str) -> bool:
        path = self._path_for(class_name)
        if os.path.exists(path):
            os.remove(path)
            return True
        return False

    def class_names(self) -> List[str]:
        names: List[str] = []
        for filename in sorted(os.listdir(self._directory)):
            if filename.endswith(self.SUFFIX):
                names.append(filename[: -len(self.SUFFIX)])
        return names

    def lineage(self, class_name: str) -> List[TestHistory]:
        """The history chain from ``class_name`` up to its root ancestor."""
        chain: List[TestHistory] = []
        current: Optional[str] = class_name
        seen = set()
        while current and current not in seen and self.exists(current):
            seen.add(current)
            history = self.load(current)
            chain.append(history)
            current = history.parent_name
        return chain
