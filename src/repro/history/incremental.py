"""Incremental subclass test planning (sec. 3.4.2 of the paper).

The adaptation of Harrold et al.'s technique, at transaction granularity:

* a subclass transaction **composed only of methods inherited without
  modification** (constructors and destructors excluded) does not need its
  test case regenerated — and, per the second experiment's setup, is *not
  rerun* for the subclass;
* a transaction **containing modified or new methods** is included in the
  subclass's test set — reusing the parent's test cases when the transaction
  already existed with an unchanged specification, regenerating otherwise.

:func:`plan_subclass_testing` computes, for every transaction of the
subclass model, its :class:`~repro.history.model.TransactionStatus`, and
:class:`IncrementalPlan` materialises the three suites an experimenter
needs:

* ``full_suite``      — everything, provenance-tagged (new vs reused);
* ``executed_suite``  — the incremental test set (what actually runs);
* ``history``         — the testing history to persist for the next level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..generator.driver import DriverGenerator
from ..generator.suite import TestSuite
from ..generator.testcase import TestCaseCounter
from ..tfm.graph import TransactionFlowGraph
from ..tfm.transactions import Transaction, enumerate_transactions
from ..tspec.model import ClassSpec, MethodCategory
from .diff import ClassDiff, classify_spec_methods
from .model import HistoryEntry, TestHistory, TransactionStatus


@dataclass(frozen=True)
class TransactionDecision:
    """The incremental decision for one subclass transaction."""

    transaction: Transaction
    status: TransactionStatus
    reason: str
    triggering_methods: Tuple[str, ...] = ()  # the new/redefined methods involved


@dataclass(frozen=True)
class IncrementalPlan:
    """The complete plan for testing a subclass incrementally."""

    parent_name: str
    subclass_name: str
    decisions: Tuple[TransactionDecision, ...]
    diff: ClassDiff
    full_suite: TestSuite       # reused + new, provenance-tagged
    executed_suite: TestSuite   # the incremental test set (must-run only)
    history: TestHistory

    def decisions_with(self, status: TransactionStatus) -> Tuple[TransactionDecision, ...]:
        return tuple(d for d in self.decisions if d.status is status)

    def stats(self) -> Dict[str, int]:
        return {
            "transactions": len(self.decisions),
            "new_transactions": len(self.decisions_with(TransactionStatus.NEW)),
            "reused_transactions": len(self.decisions_with(TransactionStatus.REUSED)),
            "retest_transactions": len(self.decisions_with(TransactionStatus.RETEST)),
            "new_cases": len(self.full_suite.new_cases),
            "reused_cases": len(self.full_suite.reused_cases),
            "executed_cases": len(self.executed_suite),
        }

    def summary(self) -> str:
        counts = self.stats()
        return (
            f"incremental plan {self.subclass_name} (parent {self.parent_name}): "
            f"{counts['new_cases']} new test cases generated, "
            f"{counts['reused_cases']} reused from superclass, "
            f"{counts['executed_cases']} in the executed (incremental) set"
        )


def _transaction_method_names(graph: TransactionFlowGraph,
                              transaction: Transaction) -> Set[str]:
    """All method names a transaction may exercise (every node alternative),
    constructors and destructors excluded (sec. 3.4.2)."""
    names: Set[str] = set()
    for node_ident in transaction.path:
        for method in graph.node_methods(node_ident):
            if method.category in (MethodCategory.CONSTRUCTOR,
                                   MethodCategory.DESTRUCTOR):
                continue
            names.add(method.name)
    return names


def plan_subclass_testing(parent_spec: ClassSpec,
                          subclass_spec: ClassSpec,
                          parent_suite: TestSuite,
                          diff: Optional[ClassDiff] = None,
                          seed: Optional[int] = None,
                          edge_bound: int = 1,
                          generator: Optional[DriverGenerator] = None,
                          ) -> IncrementalPlan:
    """Apply the incremental technique to a subclass.

    ``parent_suite`` is the parent's (already generated) transaction suite:
    the reuse pool.  ``diff`` defaults to the specification-level
    classification of the two t-specs; pass a runtime
    :func:`~repro.history.diff.classify_methods` result to honour
    implementation-level changes the specs don't capture.
    """
    diff = diff or classify_spec_methods(parent_spec, subclass_spec)
    modified_or_new = diff.modified_or_new

    subclass_graph = TransactionFlowGraph(subclass_spec)
    enumeration = enumerate_transactions(subclass_graph, edge_bound=edge_bound)
    parent_transaction_idents = {
        case.transaction.ident for case in parent_suite.cases
    }

    generator = generator or DriverGenerator(
        subclass_spec, seed=seed, edge_bound=edge_bound
    )
    counter = TestCaseCounter(prefix="STC")  # subclass numbering, no collisions

    decisions = []
    new_cases = []
    reused_cases = []
    history = TestHistory(class_name=subclass_spec.name,
                          parent_name=parent_spec.name)

    for transaction in enumeration:
        involved = _transaction_method_names(subclass_graph, transaction)
        triggering = tuple(sorted(involved & modified_or_new))
        if triggering:
            status = TransactionStatus.NEW
            reason = f"contains new/redefined methods: {', '.join(triggering)}"
            generated = generator.generate_for_transaction(transaction, counter)
            new_cases.extend(generated)
            case_idents = tuple(case.ident for case in generated)
        elif transaction.ident in parent_transaction_idents:
            status = TransactionStatus.REUSED
            reason = "inherited-only transaction; parent test cases adopted"
            adopted = [
                case for case in parent_suite.cases
                if case.transaction.ident == transaction.ident
            ]
            from dataclasses import replace as _replace
            adopted = [
                _replace(case, origin="reused", class_name=subclass_spec.name)
                for case in adopted
            ]
            reused_cases.extend(adopted)
            case_idents = tuple(case.ident for case in adopted)
        else:
            status = TransactionStatus.RETEST
            reason = ("inherited-only methods in a transaction absent from the "
                      "parent model: new interaction, must be exercised")
            generated = generator.generate_for_transaction(transaction, counter)
            new_cases.extend(generated)
            case_idents = tuple(case.ident for case in generated)

        decisions.append(TransactionDecision(
            transaction=transaction,
            status=status,
            reason=reason,
            triggering_methods=triggering,
        ))
        history.add(HistoryEntry(
            transaction_ident=transaction.ident,
            status=status,
            case_idents=case_idents,
            reason=reason,
        ))

    full_suite = TestSuite(
        class_name=subclass_spec.name,
        cases=tuple(reused_cases) + tuple(new_cases),
        seed=parent_suite.seed,
        edge_bound=edge_bound,
        transactions_total=len(enumeration),
        truncated=enumeration.truncated,
    )
    must_run_idents = {
        ident
        for entry in history.must_run_entries
        for ident in entry.case_idents
    }
    executed_suite = full_suite.filtered(lambda case: case.ident in must_run_idents)

    return IncrementalPlan(
        parent_name=parent_spec.name,
        subclass_name=subclass_spec.name,
        decisions=tuple(decisions),
        diff=diff,
        full_suite=full_suite,
        executed_suite=executed_suite,
        history=history,
    )
