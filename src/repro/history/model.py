"""Testing history: which test cases exist for which transaction, and why.

Harrold et al.'s incremental technique keeps, per class, "a testing history
that associates each test case with the feature it tests"; the paper adapts
it to associate test cases **with transactions** instead (sec. 3.4.2).  The
history records, for every transaction of a class's model, where its test
cases came from and whether they must run for this class:

* ``NEW`` — the transaction contains new or redefined methods; its test
  cases were (re)generated for this class and must run;
* ``REUSED`` — the transaction is inherited unchanged (constructor and
  destructor excluded from the comparison); the parent's test cases are
  adopted and **need not rerun** for this class;
* ``RETEST`` — the transaction is composed of inherited methods but did not
  exist in the parent's model (new interaction), so inherited features
  interact in a new way and must be exercised;
* ``SELF`` — the class is a root: everything is its own.

The second experiment of sec. 4 runs exactly the ``NEW`` + ``RETEST``
portion — what the paper calls the class's (incremental) test set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class TransactionStatus(enum.Enum):
    """Why a transaction's test cases are (not) part of this class's run."""

    NEW = "new"
    REUSED = "reused"
    RETEST = "retest"
    SELF = "self"

    @property
    def must_run(self) -> bool:
        """Whether the incremental technique reruns this transaction."""
        return self in (TransactionStatus.NEW, TransactionStatus.RETEST,
                        TransactionStatus.SELF)


@dataclass(frozen=True)
class HistoryEntry:
    """One transaction's record in a class's testing history."""

    transaction_ident: str
    status: TransactionStatus
    case_idents: Tuple[str, ...]
    reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "transaction": self.transaction_ident,
            "status": self.status.value,
            "cases": list(self.case_idents),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HistoryEntry":
        return cls(
            transaction_ident=payload["transaction"],
            status=TransactionStatus(payload["status"]),
            case_idents=tuple(payload.get("cases", ())),
            reason=payload.get("reason", ""),
        )


@dataclass
class TestHistory:
    """The testing history of one class."""

    __test__ = False  # library class, not a pytest test

    class_name: str
    parent_name: Optional[str] = None
    entries: List[HistoryEntry] = field(default_factory=list)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: HistoryEntry) -> None:
        if any(e.transaction_ident == entry.transaction_ident for e in self.entries):
            raise ValueError(
                f"history already has an entry for {entry.transaction_ident!r}"
            )
        self.entries.append(entry)

    def entry_for(self, transaction_ident: str) -> HistoryEntry:
        for entry in self.entries:
            if entry.transaction_ident == transaction_ident:
                return entry
        raise KeyError(f"no history entry for transaction {transaction_ident!r}")

    # -- views ------------------------------------------------------------

    def with_status(self, status: TransactionStatus) -> Tuple[HistoryEntry, ...]:
        return tuple(entry for entry in self.entries if entry.status is status)

    @property
    def must_run_entries(self) -> Tuple[HistoryEntry, ...]:
        """The incremental test set: what actually executes for this class."""
        return tuple(entry for entry in self.entries if entry.status.must_run)

    @property
    def reused_entries(self) -> Tuple[HistoryEntry, ...]:
        return self.with_status(TransactionStatus.REUSED)

    def case_count(self, statuses: Optional[Tuple[TransactionStatus, ...]] = None) -> int:
        selected = self.entries if statuses is None else [
            entry for entry in self.entries if entry.status in statuses
        ]
        return sum(len(entry.case_idents) for entry in selected)

    def stats(self) -> Dict[str, int]:
        """The accounting the paper reports: new vs reused test cases."""
        return {
            "transactions": len(self.entries),
            "new_cases": self.case_count((TransactionStatus.NEW,
                                          TransactionStatus.SELF,
                                          TransactionStatus.RETEST)),
            "reused_cases": self.case_count((TransactionStatus.REUSED,)),
        }

    def summary(self) -> str:
        counts = self.stats()
        lineage = f" (parent: {self.parent_name})" if self.parent_name else ""
        return (
            f"history of {self.class_name}{lineage}: "
            f"{counts['transactions']} transactions, "
            f"{counts['new_cases']} new test cases, "
            f"{counts['reused_cases']} reused from superclass"
        )

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "class": self.class_name,
            "parent": self.parent_name,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TestHistory":
        return cls(
            class_name=payload["class"],
            parent_name=payload.get("parent"),
            entries=[HistoryEntry.from_dict(item) for item in payload.get("entries", [])],
        )
