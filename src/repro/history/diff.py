"""Parent/subclass feature diff for the incremental technique.

Harrold et al. classify a subclass's features as *new*, *redefined* or
*inherited*; the paper adds one refinement: "In case an attribute is
modified, the methods using it are considered as modified" (sec. 3.4.2).

Two complementary classifiers live here:

* :func:`classify_methods` — runtime classification from the classes
  themselves (a method is redefined when the subclass's ``__dict__``
  overrides the parent's);
* :func:`classify_spec_methods` — specification-level classification from
  two t-specs (a method is redefined when its signature/category record
  changed), which also enforces the technique's constraints: single
  inheritance and no signature changes for redefined methods.

:func:`attribute_uses` implements the attribute refinement: an AST scan of
which ``self.<attr>`` names each method reads or writes, so a changed
attribute propagates "modified" to every method touching it.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..tspec.model import ClassSpec, MethodSpec

#: Method names never classified: BIT interface + Python plumbing.
_IGNORED = {
    "class_invariant", "invariant_test", "reporter", "has_builtin_test",
    "bit_state",
}


class MethodChange(enum.Enum):
    """Harrold-style classification of a subclass method."""

    NEW = "new"
    REDEFINED = "redefined"
    INHERITED = "inherited"


@dataclass(frozen=True)
class ClassDiff:
    """The complete feature diff between a parent and a subclass."""

    parent_name: str
    subclass_name: str
    changes: Tuple[Tuple[str, MethodChange], ...]  # (method name, change)
    violations: Tuple[str, ...] = ()               # technique-constraint breaches

    def change_for(self, method_name: str) -> MethodChange:
        for name, change in self.changes:
            if name == method_name:
                return change
        # A method absent from the diff (e.g. constructor overload record)
        # is conservatively treated as new: it must be exercised.
        return MethodChange.NEW

    def methods_with(self, change: MethodChange) -> Tuple[str, ...]:
        return tuple(name for name, c in self.changes if c is change)

    @property
    def modified_or_new(self) -> Set[str]:
        return {
            name for name, change in self.changes
            if change in (MethodChange.NEW, MethodChange.REDEFINED)
        }

    def summary(self) -> str:
        new = len(self.methods_with(MethodChange.NEW))
        redefined = len(self.methods_with(MethodChange.REDEFINED))
        inherited = len(self.methods_with(MethodChange.INHERITED))
        return (
            f"{self.subclass_name} vs {self.parent_name}: "
            f"{new} new, {redefined} redefined, {inherited} inherited methods"
        )


# ---------------------------------------------------------------------------
# Runtime classification
# ---------------------------------------------------------------------------


def _public_method_names(target: type) -> Set[str]:
    names: Set[str] = set()
    for klass in target.__mro__:
        if klass is object:
            continue
        for name, member in klass.__dict__.items():
            if name.startswith("_") or name in _IGNORED:
                continue
            if callable(member):
                names.add(name)
    return names


def classify_methods(parent: type, subclass: type,
                     changed_attributes: Optional[Set[str]] = None) -> ClassDiff:
    """Classify the subclass's public methods against the parent.

    ``changed_attributes`` applies the paper's refinement: any method whose
    body touches one of these attribute names is counted as redefined.
    """
    if parent not in subclass.__mro__:
        raise ValueError(
            f"{subclass.__name__} does not inherit from {parent.__name__}"
        )
    violations: List[str] = []
    direct_bases = [base for base in subclass.__bases__ if base is not object]
    if len(direct_bases) > 1:
        violations.append(
            f"{subclass.__name__} uses multiple inheritance "
            f"({', '.join(b.__name__ for b in direct_bases)}); "
            "the technique assumes a single parent"
        )

    parent_names = _public_method_names(parent)
    changes: List[Tuple[str, MethodChange]] = []
    for name in sorted(_public_method_names(subclass)):
        defined_locally = name in subclass.__dict__
        if name not in parent_names:
            changes.append((name, MethodChange.NEW))
        elif defined_locally:
            changes.append((name, MethodChange.REDEFINED))
            violation = _signature_violation(parent, subclass, name)
            if violation:
                violations.append(violation)
        else:
            changes.append((name, MethodChange.INHERITED))

    if changed_attributes:
        changes = _apply_attribute_refinement(subclass, changes, changed_attributes)

    return ClassDiff(
        parent_name=parent.__name__,
        subclass_name=subclass.__name__,
        changes=tuple(changes),
        violations=tuple(violations),
    )


def _signature_violation(parent: type, subclass: type, name: str) -> Optional[str]:
    """Constraint (ii): a redefined method keeps the parent's argument list."""
    try:
        parent_signature = inspect.signature(getattr(parent, name))
        subclass_signature = inspect.signature(getattr(subclass, name))
    except (TypeError, ValueError):
        return None
    if list(parent_signature.parameters) != list(subclass_signature.parameters):
        return (
            f"redefined method {name!r} changes the argument list "
            f"({parent_signature} -> {subclass_signature})"
        )
    return None


def _apply_attribute_refinement(subclass: type,
                                changes: List[Tuple[str, MethodChange]],
                                changed_attributes: Set[str],
                                ) -> List[Tuple[str, MethodChange]]:
    refined: List[Tuple[str, MethodChange]] = []
    for name, change in changes:
        if change is MethodChange.INHERITED:
            uses = attribute_uses(subclass, name)
            if uses & changed_attributes:
                change = MethodChange.REDEFINED
        refined.append((name, change))
    return refined


def attribute_uses(target: type, method_name: str) -> Set[str]:
    """The ``self.<attr>`` names a method's body reads or writes.

    Best-effort: methods without retrievable source (builtins, C
    extensions) report an empty set.
    """
    function = getattr(target, method_name, None)
    if function is None:
        return set()
    try:
        source = textwrap.dedent(inspect.getsource(function))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return set()
    used: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            used.add(node.attr)
    return used


# ---------------------------------------------------------------------------
# Specification-level classification
# ---------------------------------------------------------------------------


def _method_record(method: MethodSpec) -> Tuple:
    """The comparable identity of a method record (name + signature shape)."""
    return (
        method.name,
        method.category.value,
        tuple((p.name, p.domain) for p in method.parameters),
        method.return_type,
    )


def classify_spec_methods(parent_spec: ClassSpec,
                          subclass_spec: ClassSpec) -> ClassDiff:
    """Classify by comparing the two embedded t-specs.

    Constructors and destructors are excluded — they always differ between a
    class and its subclass and are excluded from test-case identity
    (sec. 3.4.2).
    """
    violations: List[str] = []
    if subclass_spec.superclass != parent_spec.name:
        violations.append(
            f"spec of {subclass_spec.name} names superclass "
            f"{subclass_spec.superclass!r}, not {parent_spec.name!r}"
        )

    parent_records = {
        method.name: _method_record(method)
        for method in parent_spec.methods
        if not (method.is_constructor or method.is_destructor)
    }
    changes: List[Tuple[str, MethodChange]] = []
    seen: Set[str] = set()
    for method in subclass_spec.methods:
        if method.is_constructor or method.is_destructor:
            continue
        if method.name in seen:
            continue
        seen.add(method.name)
        parent_record = parent_records.get(method.name)
        if parent_record is None:
            changes.append((method.name, MethodChange.NEW))
        elif parent_record == _method_record(method):
            changes.append((method.name, MethodChange.INHERITED))
        else:
            changes.append((method.name, MethodChange.REDEFINED))
            if parent_record[2] != _method_record(method)[2]:
                violations.append(
                    f"redefined method {method.name!r} changes its parameter list"
                )
    return ClassDiff(
        parent_name=parent_spec.name,
        subclass_name=subclass_spec.name,
        changes=tuple(sorted(changes)),
        violations=tuple(violations),
    )
