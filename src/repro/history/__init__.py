"""Hierarchical incremental test reuse: diffs, plans, histories, storage."""

from .diff import (
    ClassDiff,
    MethodChange,
    attribute_uses,
    classify_methods,
    classify_spec_methods,
)
from .incremental import (
    IncrementalPlan,
    TransactionDecision,
    plan_subclass_testing,
)
from .model import HistoryEntry, TestHistory, TransactionStatus
from .store import HistoryStore

__all__ = [
    "ClassDiff",
    "HistoryEntry",
    "HistoryStore",
    "IncrementalPlan",
    "MethodChange",
    "TestHistory",
    "TransactionDecision",
    "TransactionStatus",
    "attribute_uses",
    "classify_methods",
    "classify_spec_methods",
    "plan_subclass_testing",
]
