"""PyConcat — self-testable software components.

A Python reproduction of *Constructing Self-Testable Software Components*
(E. Martins, C. M. Toyota, R. L. Yanagawa — DSN 2001) and of its prototype
tool, Concat.

A **self-testable component** carries, in addition to its implementation:

* an embedded test specification (:mod:`repro.tspec`) describing its
  interface (attribute/parameter value domains) and its behaviour as a
  Transaction Flow Model (:mod:`repro.tfm`);
* built-in test capabilities (:mod:`repro.bit`): contract assertions used
  as a partial oracle, a state reporter, and a test-mode access control;
* a consumer-side Driver Generator (:mod:`repro.generator`) that derives an
  executable test suite per the transaction-coverage criterion, executed by
  the harness (:mod:`repro.harness`);
* a testing history supporting hierarchical incremental reuse for
  subclasses (:mod:`repro.history`).

The paper's empirical evaluation — interface mutation over an MFC-style
linked list and its sortable subclass — is fully reproducible via
:mod:`repro.mutation` and :mod:`repro.components`; see ``benchmarks/``.

Quickstart::

    from repro import DriverGenerator, TestExecutor, test_mode
    from repro.components import BoundedStack

    suite = DriverGenerator(BoundedStack.__tspec__).generate()
    result = TestExecutor(BoundedStack).run_suite(suite)
    assert result.all_passed
"""

from .bit import (
    BuiltInTest,
    check_invariant,
    check_postcondition,
    check_precondition,
    compile_component,
    ensure,
    instrument,
    is_self_testable,
    require,
    set_test_mode,
    test_mode,
)
from .core import (
    BoolDomain,
    ContractViolation,
    FloatRangeDomain,
    InvariantViolation,
    ObjectDomain,
    PointerDomain,
    PostconditionViolation,
    PreconditionViolation,
    RangeDomain,
    ReproError,
    ReproRandom,
    SetDomain,
    StringDomain,
)
from .generator import DriverGenerator, TestSuite, TypeBinding, generate_suite
from .harness import ResultLog, SuiteResult, TestExecutor, Verdict, run_suite
from .history import HistoryStore, TestHistory, plan_subclass_testing
from .mutation import (
    MutationAnalysis,
    analyze_mutants,
    build_score_table,
    generate_mutants,
    probe_equivalence,
)
from .tfm import TransactionFlowGraph, enumerate_transactions
from .tspec import ClassSpec, SpecBuilder, parse_tspec, validate, write_tspec

__version__ = "1.0.0"

__all__ = [
    "BoolDomain",
    "BuiltInTest",
    "ClassSpec",
    "ContractViolation",
    "DriverGenerator",
    "FloatRangeDomain",
    "HistoryStore",
    "InvariantViolation",
    "MutationAnalysis",
    "ObjectDomain",
    "PointerDomain",
    "PostconditionViolation",
    "PreconditionViolation",
    "RangeDomain",
    "ReproError",
    "ReproRandom",
    "ResultLog",
    "SetDomain",
    "SpecBuilder",
    "StringDomain",
    "SuiteResult",
    "TestExecutor",
    "TestHistory",
    "TestSuite",
    "TransactionFlowGraph",
    "TypeBinding",
    "Verdict",
    "analyze_mutants",
    "build_score_table",
    "check_invariant",
    "check_postcondition",
    "check_precondition",
    "compile_component",
    "ensure",
    "enumerate_transactions",
    "generate_mutants",
    "generate_suite",
    "instrument",
    "is_self_testable",
    "parse_tspec",
    "plan_subclass_testing",
    "probe_equivalence",
    "require",
    "run_suite",
    "set_test_mode",
    "test_mode",
    "validate",
    "write_tspec",
]
