"""Coverage criteria over transaction flow models.

The paper's Driver Generator uses *transaction coverage* — "exercising each
individual transaction at least once" — which it notes is the weakest of
Beizer's criteria yet still useful (sec. 3.4.1).  For the coverage ablation
(DESIGN.md §4) we also measure the two structural criteria a chosen set of
transactions induces:

* **node coverage** — every TFM node visited by some chosen transaction;
* **link coverage** — every TFM edge traversed by some chosen transaction.

Measurement is separate from generation: any subset of transactions (e.g. a
pruned incremental suite) can be scored against the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from .graph import TransactionFlowGraph
from .transactions import EnumerationResult, Transaction


@dataclass(frozen=True)
class CoverageReport:
    """Achieved coverage of a set of transactions against a model."""

    class_name: str
    transaction_total: int
    transactions_chosen: int
    nodes_total: int
    nodes_covered: int
    links_total: int
    links_covered: int
    uncovered_nodes: Tuple[str, ...]
    uncovered_links: Tuple[Tuple[str, str], ...]

    @property
    def node_ratio(self) -> float:
        return self.nodes_covered / self.nodes_total if self.nodes_total else 1.0

    @property
    def link_ratio(self) -> float:
        return self.links_covered / self.links_total if self.links_total else 1.0

    @property
    def transaction_ratio(self) -> float:
        if not self.transaction_total:
            return 1.0
        return min(1.0, self.transactions_chosen / self.transaction_total)

    def summary(self) -> str:
        return (
            f"{self.class_name}: {self.transactions_chosen}/{self.transaction_total} "
            f"transactions, {self.nodes_covered}/{self.nodes_total} nodes "
            f"({self.node_ratio:.0%}), {self.links_covered}/{self.links_total} links "
            f"({self.link_ratio:.0%})"
        )


def covered_nodes(transactions: Iterable[Transaction]) -> FrozenSet[str]:
    nodes = set()
    for transaction in transactions:
        nodes.update(transaction.path)
    return frozenset(nodes)


def covered_links(transactions: Iterable[Transaction]) -> FrozenSet[Tuple[str, str]]:
    links = set()
    for transaction in transactions:
        links.update(transaction.edges())
    return frozenset(links)


def measure(graph: TransactionFlowGraph,
            chosen: Sequence[Transaction],
            enumeration: EnumerationResult) -> CoverageReport:
    """Score ``chosen`` transactions against the model and the full set."""
    node_set = covered_nodes(chosen)
    link_set = covered_links(chosen)
    all_nodes = set(graph.node_idents)
    all_links = set(graph.edges)
    return CoverageReport(
        class_name=graph.class_name,
        transaction_total=len(enumeration),
        transactions_chosen=len(chosen),
        nodes_total=len(all_nodes),
        nodes_covered=len(node_set & all_nodes),
        links_total=len(all_links),
        links_covered=len(link_set & all_links),
        uncovered_nodes=tuple(sorted(all_nodes - node_set)),
        uncovered_links=tuple(sorted(all_links - link_set)),
    )


# ---------------------------------------------------------------------------
# Reduced suites for the coverage ablation
# ---------------------------------------------------------------------------


def select_for_node_coverage(enumeration: EnumerationResult) -> Tuple[Transaction, ...]:
    """Greedy minimal-ish subset achieving node coverage.

    Repeatedly picks the transaction covering the most still-uncovered
    nodes.  Greedy set cover is within ln(n) of optimal, ample for the
    ablation's purpose (comparing suite sizes across criteria).
    """
    return _greedy_cover(enumeration, lambda t: set(t.path))


def select_for_link_coverage(enumeration: EnumerationResult) -> Tuple[Transaction, ...]:
    """Greedy minimal-ish subset achieving link coverage."""
    return _greedy_cover(enumeration, lambda t: set(t.edges()))


def _greedy_cover(enumeration: EnumerationResult, items_of) -> Tuple[Transaction, ...]:
    universe = set()
    for transaction in enumeration:
        universe.update(items_of(transaction))
    remaining = set(universe)
    chosen: List[Transaction] = []
    candidates = list(enumeration)
    while remaining and candidates:
        best = max(candidates, key=lambda t: (len(items_of(t) & remaining), -t.length))
        gain = items_of(best) & remaining
        if not gain:
            break
        chosen.append(best)
        remaining -= gain
        candidates.remove(best)
    return tuple(chosen)
