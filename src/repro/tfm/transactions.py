"""Transaction enumeration over a TFM.

A transaction is "a path through the TFM from birth to death of an object"
(sec. 3.2).  The transaction-coverage criterion requires exercising each
individual transaction at least once (sec. 3.4.1).  When the model has
cycles the set of transactions is infinite, so — following Beizer's practice
of covering loops at least once — enumeration is bounded: each directed edge
may be traversed at most ``edge_bound`` times per path.

``edge_bound = 1`` enumerates every *edge-simple* transaction, which already
traverses each self-loop once.  Raising the bound exercises loops more
(an ablation benchmark compares bounds; see DESIGN.md §5.1).

Enumeration is exhaustive up to ``max_transactions``; hitting the cap is
reported explicitly (``EnumerationResult.truncated``) — never silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import NoTransactionError
from .graph import TransactionFlowGraph

DEFAULT_EDGE_BOUND = 1
DEFAULT_MAX_TRANSACTIONS = 20_000


@dataclass(frozen=True)
class Transaction:
    """One birth-to-death path, identified by its node sequence."""

    path: Tuple[str, ...]

    def __post_init__(self):
        if len(self.path) < 1:
            raise ValueError("a transaction needs at least one node")

    @property
    def ident(self) -> str:
        """Stable identifier: the node idents joined by ``>``."""
        return ">".join(self.path)

    @property
    def length(self) -> int:
        return len(self.path)

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.path, self.path[1:]))

    def visits(self, node_ident: str) -> int:
        return self.path.count(node_ident)

    def __str__(self) -> str:
        return " -> ".join(self.path)


@dataclass(frozen=True)
class EnumerationResult:
    """The enumerated transactions plus honesty metadata."""

    transactions: Tuple[Transaction, ...]
    edge_bound: int
    truncated: bool

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index):
        return self.transactions[index]


def enumerate_transactions(graph: TransactionFlowGraph,
                           edge_bound: int = DEFAULT_EDGE_BOUND,
                           max_transactions: int = DEFAULT_MAX_TRANSACTIONS,
                           ) -> EnumerationResult:
    """Depth-first enumeration of bounded birth-to-death paths.

    Paths are produced in a deterministic order (birth nodes in declaration
    order, successors in edge-declaration order) so test-case numbering is
    stable across runs.
    """
    if edge_bound < 1:
        raise ValueError("edge_bound must be >= 1")
    if max_transactions < 1:
        raise ValueError("max_transactions must be >= 1")

    found: List[Transaction] = []
    truncated = False

    for birth in graph.birth_nodes:
        if truncated:
            break
        truncated = _walk(graph, birth, [birth], {}, edge_bound,
                          found, max_transactions) or truncated

    if not found:
        raise NoTransactionError(
            f"model of {graph.class_name} admits no birth-to-death transaction"
        )
    return EnumerationResult(
        transactions=tuple(found), edge_bound=edge_bound, truncated=truncated
    )


def _walk(graph: TransactionFlowGraph, current: str, path: List[str],
          edge_visits: Dict[Tuple[str, str], int], edge_bound: int,
          found: List[Transaction], max_transactions: int) -> bool:
    """Recursive DFS step; returns True when the cap was hit."""
    if graph.is_death(current):
        found.append(Transaction(path=tuple(path)))
        if len(found) >= max_transactions:
            return True
        # A death node may still have successors in odd models; a transaction
        # ends at the first death node reached, matching "from creation to
        # destruction" — a destroyed object accepts no further tasks.
        return False

    for successor in graph.successors(current):
        edge = (current, successor)
        if edge_visits.get(edge, 0) >= edge_bound:
            continue
        edge_visits[edge] = edge_visits.get(edge, 0) + 1
        path.append(successor)
        if _walk(graph, successor, path, edge_visits, edge_bound,
                 found, max_transactions):
            return True
        path.pop()
        edge_visits[edge] -= 1
        if edge_visits[edge] == 0:
            del edge_visits[edge]
    return False


def shortest_transaction(graph: TransactionFlowGraph,
                         birth: Optional[str] = None) -> Transaction:
    """BFS shortest birth-to-death path (the quickest smoke transaction)."""
    births = (birth,) if birth else graph.birth_nodes
    frontier: List[Tuple[str, Tuple[str, ...]]] = [(b, (b,)) for b in births]
    seen = set(births)
    while frontier:
        next_frontier: List[Tuple[str, Tuple[str, ...]]] = []
        for current, path in frontier:
            if graph.is_death(current):
                return Transaction(path=path)
            for successor in graph.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append((successor, path + (successor,)))
        frontier = next_frontier
    raise NoTransactionError(
        f"model of {graph.class_name} admits no birth-to-death transaction"
    )


def transactions_through(result: EnumerationResult,
                         node_ident: str) -> Tuple[Transaction, ...]:
    """The enumerated transactions that visit a given node."""
    return tuple(t for t in result if node_ident in t.path)
