"""Structural analysis of transaction flow models.

Beyond validation (which is spec-level, in :mod:`repro.tspec.validate`),
these analyses describe the *shape* of the model: how big, how loopy, how
wide — the numbers the paper reports per experiment ("a test model composed
of 16 nodes and 43 links", sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .graph import TransactionFlowGraph


@dataclass(frozen=True)
class ModelMetrics:
    """Summary metrics of one TFM."""

    class_name: str
    nodes: int
    links: int
    birth_nodes: int
    death_nodes: int
    method_alternatives: int  # total methods across node alternative lists
    cyclomatic: int           # E - N + 2 (single connected component assumed)
    self_loops: int
    cycle_nodes: int          # nodes on at least one cycle
    max_out_degree: int

    def summary(self) -> str:
        return (
            f"{self.class_name}: {self.nodes} nodes, {self.links} links, "
            f"cyclomatic {self.cyclomatic}, {self.self_loops} self-loops, "
            f"{self.cycle_nodes} nodes on cycles"
        )


def analyze(graph: TransactionFlowGraph) -> ModelMetrics:
    """Compute :class:`ModelMetrics` for a model."""
    self_loops = sum(1 for source, target in graph.edges if source == target)
    on_cycles = _nodes_on_cycles(graph)
    alternatives = sum(len(graph.node(ident).methods) for ident in graph.node_idents)
    max_out = max((graph.out_degree(ident) for ident in graph.node_idents), default=0)
    return ModelMetrics(
        class_name=graph.class_name,
        nodes=graph.node_count,
        links=graph.edge_count,
        birth_nodes=len(graph.birth_nodes),
        death_nodes=len(graph.death_nodes),
        method_alternatives=alternatives,
        cyclomatic=graph.edge_count - graph.node_count + 2,
        self_loops=self_loops,
        cycle_nodes=len(on_cycles),
        max_out_degree=max_out,
    )


def _nodes_on_cycles(graph: TransactionFlowGraph) -> Set[str]:
    """Nodes belonging to a non-trivial SCC, plus self-loop nodes.

    Tarjan's algorithm, iterative to keep recursion depth independent of
    model size.
    """
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    result: Set[str] = set()

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.update(component)

    for ident in graph.node_idents:
        if ident not in index:
            strongconnect(ident)

    for source, target in graph.edges:
        if source == target:
            result.add(source)
    return result


def dead_end_nodes(graph: TransactionFlowGraph) -> Tuple[str, ...]:
    """Non-death nodes with no outgoing edges (transactions get stuck)."""
    return tuple(
        ident
        for ident in graph.node_idents
        if graph.out_degree(ident) == 0 and not graph.is_death(ident)
    )


def unreachable_nodes(graph: TransactionFlowGraph) -> Tuple[str, ...]:
    """Nodes not reachable from any birth node."""
    seen: Set[str] = set()
    frontier = list(graph.birth_nodes)
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(graph.successors(current))
    return tuple(ident for ident in graph.node_idents if ident not in seen)
