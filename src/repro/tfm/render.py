"""Rendering of transaction flow models.

Figure 2 of the paper shows the TFM of ``Product`` with the use-case path
highlighted.  This module renders a TFM as:

* an ASCII adjacency listing with method names per node and an optional
  highlighted transaction (marked with ``*``), for terminal output; and
* Graphviz DOT source, for documentation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from .graph import TransactionFlowGraph
from .transactions import Transaction


def render_ascii(graph: TransactionFlowGraph,
                 highlight: Optional[Transaction] = None) -> str:
    """Adjacency listing; nodes/edges on a highlighted path are starred."""
    highlighted_nodes: Set[str] = set(highlight.path) if highlight else set()
    highlighted_edges: Set[Tuple[str, str]] = (
        set(highlight.edges()) if highlight else set()
    )

    lines: List[str] = [f"TFM of {graph.class_name} "
                        f"({graph.node_count} nodes, {graph.edge_count} links)"]
    if highlight:
        lines.append(f"highlighted transaction: {highlight}")
    lines.append("")

    for ident in graph.node_idents:
        node = graph.node(ident)
        marker = "*" if ident in highlighted_nodes else " "
        roles = []
        if graph.is_birth(ident):
            roles.append("birth")
        if graph.is_death(ident):
            roles.append("death")
        role_text = f" [{'/'.join(roles)}]" if roles else ""
        method_names = ", ".join(
            method.name for method in graph.node_methods(ident)
        )
        lines.append(f"{marker} {ident}{role_text}: {{{method_names}}}")
        for successor in graph.successors(ident):
            edge_marker = "*" if (ident, successor) in highlighted_edges else " "
            lines.append(f"    {edge_marker} -> {successor}")
    return "\n".join(lines)


def render_dot(graph: TransactionFlowGraph,
               highlight: Optional[Transaction] = None,
               graph_name: Optional[str] = None) -> str:
    """Graphviz DOT source for the model."""
    highlighted_edges: Set[Tuple[str, str]] = (
        set(highlight.edges()) if highlight else set()
    )
    highlighted_nodes: Set[str] = set(highlight.path) if highlight else set()

    name = graph_name or graph.class_name
    lines: List[str] = [f'digraph "{name}" {{', "  rankdir=LR;"]
    for ident in graph.node_idents:
        method_names = "\\n".join(
            method.name for method in graph.node_methods(ident)
        )
        attributes = [f'label="{ident}\\n{method_names}"']
        if graph.is_birth(ident):
            attributes.append("shape=invhouse")
        elif graph.is_death(ident):
            attributes.append("shape=house")
        else:
            attributes.append("shape=box")
        if ident in highlighted_nodes:
            attributes.append("style=bold")
        lines.append(f"  {ident} [{', '.join(attributes)}];")
    for source, target in graph.edges:
        decoration = " [penwidth=2, style=bold]" if (source, target) in highlighted_edges else ""
        lines.append(f"  {source} -> {target}{decoration};")
    lines.append("}")
    return "\n".join(lines)


def render_transaction_table(transactions: Sequence[Transaction],
                             limit: int = 50) -> str:
    """Numbered listing of transactions (what the driver will exercise)."""
    lines: List[str] = []
    for number, transaction in enumerate(transactions[:limit]):
        lines.append(f"T{number:04d}  {transaction}")
    hidden = len(transactions) - limit
    if hidden > 0:
        lines.append(f"… and {hidden} more transactions")
    return "\n".join(lines)
