"""Transaction Flow Model graph.

A TFM (paper sec. 3.2, Figure 2) is a directed graph whose nodes represent
public tasks of the component (each realised by one of several alternative
methods) and whose links say "task A may be immediately followed by task B".
An individual *transaction* is a path from a birth node (constructor) to a
death node (destructor).

:class:`TransactionFlowGraph` is a thin, immutable view over the node/edge
records of a :class:`~repro.tspec.model.ClassSpec`, optimised for traversal:
successor/predecessor maps are precomputed dictionaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.errors import ModelError
from ..tspec.model import ClassSpec, MethodSpec, NodeSpec

Edge = Tuple[str, str]


class TransactionFlowGraph:
    """Immutable traversal view of a class's transaction flow model."""

    def __init__(self, spec: ClassSpec):
        if not spec.nodes:
            raise ModelError(f"class {spec.name} has no test model")
        self._spec = spec
        self._nodes: Dict[str, NodeSpec] = {node.ident: node for node in spec.nodes}
        self._successors: Dict[str, Tuple[str, ...]] = spec.adjacency()
        predecessors: Dict[str, List[str]] = {ident: [] for ident in self._nodes}
        for source, targets in self._successors.items():
            for target in targets:
                predecessors.setdefault(target, []).append(source)
        self._predecessors: Dict[str, Tuple[str, ...]] = {
            ident: tuple(sources) for ident, sources in predecessors.items()
        }
        self._birth = tuple(node.ident for node in spec.start_nodes)
        self._death = tuple(node.ident for node in spec.end_nodes)
        if not self._birth:
            raise ModelError(f"class {spec.name}: model has no birth node")
        if not self._death:
            raise ModelError(f"class {spec.name}: model has no death node")

    # -- basic accessors ----------------------------------------------------

    @property
    def spec(self) -> ClassSpec:
        return self._spec

    @property
    def class_name(self) -> str:
        return self._spec.name

    @property
    def node_idents(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def birth_nodes(self) -> Tuple[str, ...]:
        return self._birth

    @property
    def death_nodes(self) -> Tuple[str, ...]:
        return self._death

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple((edge.source, edge.target) for edge in self._spec.edges)

    def node(self, ident: str) -> NodeSpec:
        try:
            return self._nodes[ident]
        except KeyError:
            raise ModelError(f"unknown node {ident!r} in model of {self.class_name}") from None

    def successors(self, ident: str) -> Tuple[str, ...]:
        self.node(ident)
        return self._successors.get(ident, ())

    def predecessors(self, ident: str) -> Tuple[str, ...]:
        self.node(ident)
        return self._predecessors.get(ident, ())

    def node_methods(self, ident: str) -> Tuple[MethodSpec, ...]:
        """The alternative method specs constituting a node."""
        return tuple(
            self._spec.method_by_ident(method_ident)
            for method_ident in self.node(ident).methods
        )

    def is_birth(self, ident: str) -> bool:
        return ident in self._birth

    def is_death(self, ident: str) -> bool:
        return ident in self._death

    # -- counts -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._spec.edges)

    def out_degree(self, ident: str) -> int:
        return len(self.successors(ident))

    def in_degree(self, ident: str) -> int:
        return len(self.predecessors(ident))

    # -- path helpers ---------------------------------------------------------

    def validate_path(self, path: Iterable[str]) -> bool:
        """True when ``path`` is a legal birth-to-death walk of this graph."""
        sequence = list(path)
        if not sequence:
            return False
        if sequence[0] not in self._birth:
            return False
        if sequence[-1] not in self._death:
            return False
        for current, following in zip(sequence, sequence[1:]):
            if following not in self._successors.get(current, ()):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"TransactionFlowGraph({self.class_name}: "
            f"{self.node_count} nodes, {self.edge_count} links)"
        )
