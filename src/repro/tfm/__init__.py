"""Transaction flow model: graph, transactions, coverage, analysis, render."""

from .analysis import ModelMetrics, analyze, dead_end_nodes, unreachable_nodes
from .coverage import (
    CoverageReport,
    covered_links,
    covered_nodes,
    measure,
    select_for_link_coverage,
    select_for_node_coverage,
)
from .graph import TransactionFlowGraph
from .render import render_ascii, render_dot, render_transaction_table
from .transactions import (
    DEFAULT_EDGE_BOUND,
    DEFAULT_MAX_TRANSACTIONS,
    EnumerationResult,
    Transaction,
    enumerate_transactions,
    shortest_transaction,
    transactions_through,
)

__all__ = [
    "CoverageReport",
    "DEFAULT_EDGE_BOUND",
    "DEFAULT_MAX_TRANSACTIONS",
    "EnumerationResult",
    "ModelMetrics",
    "Transaction",
    "TransactionFlowGraph",
    "analyze",
    "covered_links",
    "covered_nodes",
    "dead_end_nodes",
    "enumerate_transactions",
    "measure",
    "render_ascii",
    "render_dot",
    "render_transaction_table",
    "select_for_link_coverage",
    "select_for_node_coverage",
    "shortest_transaction",
    "transactions_through",
    "unreachable_nodes",
]
