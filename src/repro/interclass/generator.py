"""Interclass test generation: transactions over several objects.

Reuses the intraclass machinery one level up: the assembly's nodes/edges
form a graph with the same traversal structure as a TFM, so transaction
enumeration is shared (:func:`repro.tfm.transactions.enumerate_transactions`
is duck-typed over :class:`AssemblyGraph`).  What changes is expansion:

* a node's alternatives are **qualified tasks** (role + method), so a test
  case's steps carry the role whose object performs them;
* a sequence is *well-formed* only if each role's first task on the path is
  one of its constructors (an object must exist before it is used) and no
  role is constructed twice; ill-formed variants are counted, never
  silently dropped;
* parameters typed as another role's class become :class:`RoleRef`
  placeholders — at execution time they resolve to the live object created
  earlier in the same transaction.  This is the interclass step: objects
  flowing across class boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domains import Domain, ObjectDomain, PointerDomain
from ..core.rng import ReproRandom
from ..tfm.transactions import (
    DEFAULT_MAX_TRANSACTIONS,
    EnumerationResult,
    Transaction,
    enumerate_transactions,
)
from .model import AssemblySpec, QualifiedTask
from ..generator.values import TypeBinding, ValueSampler


class AssemblyGraph:
    """Traversal view of an assembly model (duck-compatible with the TFM)."""

    def __init__(self, spec: AssemblySpec):
        spec.validate()
        self._spec = spec
        self._successors = spec.adjacency()
        self._starts = tuple(node.ident for node in spec.start_nodes)
        self._ends = tuple(node.ident for node in spec.end_nodes)

    @property
    def spec(self) -> AssemblySpec:
        return self._spec

    @property
    def class_name(self) -> str:  # used by shared enumeration errors
        return self._spec.name

    @property
    def birth_nodes(self) -> Tuple[str, ...]:
        return self._starts

    @property
    def death_nodes(self) -> Tuple[str, ...]:
        return self._ends

    @property
    def node_idents(self) -> Tuple[str, ...]:
        return tuple(node.ident for node in self._spec.nodes)

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple((edge.source, edge.target) for edge in self._spec.edges)

    @property
    def node_count(self) -> int:
        return len(self._spec.nodes)

    @property
    def edge_count(self) -> int:
        return len(self._spec.edges)

    def successors(self, ident: str) -> Tuple[str, ...]:
        return self._successors.get(ident, ())

    def is_birth(self, ident: str) -> bool:
        return ident in self._starts

    def is_death(self, ident: str) -> bool:
        return ident in self._ends

    def node_tasks(self, ident: str) -> Tuple[QualifiedTask, ...]:
        return self._spec.node(ident).tasks

    def validate_path(self, path: Iterable[str]) -> bool:
        sequence = list(path)
        if not sequence or sequence[0] not in self._starts:
            return False
        if sequence[-1] not in self._ends:
            return False
        for current, following in zip(sequence, sequence[1:]):
            if following not in self._successors.get(current, ()):
                return False
        return True


@dataclass(frozen=True)
class RoleRef:
    """Placeholder argument: 'the live object of this role'."""

    role: str

    def describe(self) -> str:
        return f"<role {self.role}>"


@dataclass(frozen=True)
class InterclassStep:
    """One step of an interclass test case."""

    role: str
    method_ident: str
    method_name: str
    arguments: Tuple[object, ...] = ()
    node_ident: str = ""
    is_construction: bool = False
    is_destruction: bool = False

    def format(self) -> str:
        rendered = ", ".join(
            argument.describe() if isinstance(argument, RoleRef) else repr(argument)
            for argument in self.arguments
        )
        call = f"{self.role}.{self.method_name}({rendered})"
        if self.is_construction:
            return f"new {call}"
        if self.is_destruction:
            return f"delete {self.role}"
        return call


@dataclass(frozen=True)
class InterclassTestCase:
    """A generated interclass test case."""

    ident: str
    transaction: Transaction
    steps: Tuple[InterclassStep, ...]
    assembly_name: str
    seed: int = 0

    @property
    def roles_used(self) -> Tuple[str, ...]:
        ordered: List[str] = []
        for step in self.steps:
            if step.role not in ordered:
                ordered.append(step.role)
        return tuple(ordered)

    def format(self) -> str:
        lines = [f"{self.ident} [{self.assembly_name}] {self.transaction}"]
        lines.extend(f"    {step.format()}" for step in self.steps)
        return "\n".join(lines)


@dataclass(frozen=True)
class InterclassSuite:
    """The generated interclass suite plus honesty accounting."""

    assembly_name: str
    cases: Tuple[InterclassTestCase, ...]
    seed: int
    transactions_total: int
    ill_formed_variants: int  # sequences dropped (role used before birth)
    truncated: bool

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def summary(self) -> str:
        note = " [TRUNCATED]" if self.truncated else ""
        return (
            f"interclass suite for {self.assembly_name}: {len(self.cases)} "
            f"cases over {self.transactions_total} transactions "
            f"({self.ill_formed_variants} ill-formed variants rejected){note}"
        )


class InterclassDriverGenerator:
    """Generates interclass suites from an assembly specification."""

    def __init__(self, assembly: AssemblySpec,
                 seed: Optional[int] = None,
                 bindings: Optional[TypeBinding] = None,
                 edge_bound: int = 1,
                 max_transactions: int = DEFAULT_MAX_TRANSACTIONS):
        self._assembly = assembly
        self._graph = AssemblyGraph(assembly)
        self._rng = ReproRandom(seed)
        self._bindings = bindings or TypeBinding()
        self._edge_bound = edge_bound
        self._max_transactions = max_transactions
        #: class name → role name, for RoleRef substitution.
        self._role_by_class: Dict[str, str] = {
            role.class_spec.name: role.name for role in assembly.roles
        }

    @property
    def graph(self) -> AssemblyGraph:
        return self._graph

    def enumerate(self) -> EnumerationResult:
        return enumerate_transactions(
            self._graph,
            edge_bound=self._edge_bound,
            max_transactions=self._max_transactions,
        )

    def generate(self) -> InterclassSuite:
        enumeration = self.enumerate()
        cases: List[InterclassTestCase] = []
        ill_formed = 0
        number = 0
        for transaction in enumeration:
            alternative_lists = [
                self._graph.node_tasks(node_ident)
                for node_ident in transaction.path
            ]
            variants = max(len(alternatives) for alternatives in alternative_lists)
            for variant in range(variants):
                chosen = tuple(
                    alternatives[variant % len(alternatives)]
                    for alternatives in alternative_lists
                )
                if not self._well_formed(chosen):
                    ill_formed += 1
                    continue
                case_seed = self._rng.fork(number).seed
                cases.append(self._build_case(
                    f"ITC{number}", transaction, chosen, case_seed
                ))
                number += 1
        return InterclassSuite(
            assembly_name=self._assembly.name,
            cases=tuple(cases),
            seed=self._rng.seed,
            transactions_total=len(enumeration),
            ill_formed_variants=ill_formed,
            truncated=enumeration.truncated,
        )

    # ------------------------------------------------------------------

    def _well_formed(self, chosen: Sequence[QualifiedTask]) -> bool:
        """Each role constructed exactly once, before any of its uses, and
        never used after its destruction."""
        constructed = set()
        destroyed = set()
        for task in chosen:
            method = self._assembly.method_of(task)
            if method.is_constructor:
                if task.role in constructed:
                    return False  # double construction
                constructed.add(task.role)
            elif method.is_destructor:
                if task.role not in constructed or task.role in destroyed:
                    return False
                destroyed.add(task.role)
            else:
                if task.role not in constructed or task.role in destroyed:
                    return False  # used before birth or after death
        return bool(constructed)

    def _build_case(self, ident: str, transaction: Transaction,
                    chosen: Sequence[QualifiedTask], case_seed: int,
                    ) -> InterclassTestCase:
        sampler = ValueSampler(ReproRandom(case_seed), bindings=self._bindings)
        steps: List[InterclassStep] = []
        for node_ident, task in zip(transaction.path, chosen):
            method = self._assembly.method_of(task)
            arguments = tuple(
                self._sample_argument(sampler, parameter.name, parameter.domain)
                for parameter in method.parameters
            )
            steps.append(
                InterclassStep(
                    role=task.role,
                    method_ident=task.method_ident,
                    method_name=method.name,
                    arguments=arguments,
                    node_ident=node_ident,
                    is_construction=method.is_constructor,
                    is_destruction=method.is_destructor,
                )
            )
        return InterclassTestCase(
            ident=ident,
            transaction=transaction,
            steps=tuple(steps),
            assembly_name=self._assembly.name,
            seed=case_seed,
        )

    def _sample_argument(self, sampler: ValueSampler, name: str,
                         domain: Domain):
        """Role-typed parameters become RoleRefs; the rest sample normally."""
        target = domain
        if isinstance(target, PointerDomain):
            target = target.target
        if isinstance(target, ObjectDomain):
            role = self._role_by_class.get(target.class_name)
            if role is not None:
                return RoleRef(role)
        return sampler.sample(name, domain)
