"""Assembly specifications: test models spanning several classes.

The paper's short-term future work (sec. 6): "We are also extending this
approach for components having more than one class; so instead of method's
interactions inside a class (intraclass testing), we focus on interactions
between classes (interclass testing)."  The TFM was chosen precisely
because "it can be used for components having more than one object […] as
it can show the sequencing of activities performed by several objects as
well" (sec. 3.2).

An :class:`AssemblySpec` realises that extension:

* an assembly has named **roles**, each bound to a (self-testable) class's
  t-spec — e.g. the warehouse assembly has a ``provider`` role and a
  ``product`` role;
* assembly nodes group **qualified tasks** ``role:method_ident``: the same
  node/edge machinery as the intraclass TFM, but each task names which
  object performs it;
* a transaction is a birth-to-death path through the *assembly's* model:
  it starts by constructing the participating objects and interleaves
  their methods.

The construction rule: a role's object is created lazily, by the first
task of that role on the path, which must be one of the role's
constructors.  The ``birth`` flag marks nodes that may start transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.errors import SpecValidationError
from ..tspec.model import ClassSpec, MethodSpec

#: Separator between role name and method ident in a qualified task.
QUALIFIER = ":"


@dataclass(frozen=True)
class QualifiedTask:
    """One task of an assembly node: a method of a specific role."""

    role: str
    method_ident: str

    @classmethod
    def parse(cls, text: str) -> "QualifiedTask":
        if QUALIFIER not in text:
            raise SpecValidationError(
                [f"qualified task {text!r} must look like 'role{QUALIFIER}m1'"]
            )
        role, _, method_ident = text.partition(QUALIFIER)
        if not role or not method_ident:
            raise SpecValidationError([f"malformed qualified task {text!r}"])
        return cls(role=role, method_ident=method_ident)

    def render(self) -> str:
        return f"{self.role}{QUALIFIER}{self.method_ident}"


@dataclass(frozen=True)
class RoleSpec:
    """One participating class of the assembly."""

    name: str
    class_spec: ClassSpec

    def method_by_ident(self, ident: str) -> MethodSpec:
        return self.class_spec.method_by_ident(ident)


@dataclass(frozen=True)
class AssemblyNodeSpec:
    """One node of the assembly model: alternative qualified tasks."""

    ident: str
    tasks: Tuple[QualifiedTask, ...]
    is_start: bool = False
    is_end: bool = False

    def __post_init__(self):
        if not self.tasks:
            raise SpecValidationError([f"assembly node {self.ident} has no tasks"])


@dataclass(frozen=True)
class AssemblyEdgeSpec:
    source: str
    target: str


@dataclass(frozen=True)
class AssemblySpec:
    """The complete interclass test specification."""

    name: str
    roles: Tuple[RoleSpec, ...]
    nodes: Tuple[AssemblyNodeSpec, ...]
    edges: Tuple[AssemblyEdgeSpec, ...]

    # -- lookups ------------------------------------------------------------

    def role(self, name: str) -> RoleSpec:
        for role in self.roles:
            if role.name == name:
                return role
        raise KeyError(f"assembly {self.name} has no role {name!r}")

    def node(self, ident: str) -> AssemblyNodeSpec:
        for node in self.nodes:
            if node.ident == ident:
                return node
        raise KeyError(f"assembly {self.name} has no node {ident!r}")

    def method_of(self, task: QualifiedTask) -> MethodSpec:
        return self.role(task.role).method_by_ident(task.method_ident)

    @property
    def role_names(self) -> Tuple[str, ...]:
        return tuple(role.name for role in self.roles)

    @property
    def start_nodes(self) -> Tuple[AssemblyNodeSpec, ...]:
        return tuple(node for node in self.nodes if node.is_start)

    @property
    def end_nodes(self) -> Tuple[AssemblyNodeSpec, ...]:
        return tuple(node for node in self.nodes if node.is_end)

    def adjacency(self) -> Dict[str, Tuple[str, ...]]:
        out: Dict[str, list] = {node.ident: [] for node in self.nodes}
        for edge in self.edges:
            out.setdefault(edge.source, []).append(edge.target)
        return {ident: tuple(targets) for ident, targets in out.items()}

    # -- validation --------------------------------------------------------

    def problems(self) -> Tuple[str, ...]:
        """Structural consistency check (assembly-level)."""
        found = []
        role_names = set(self.role_names)
        if len(role_names) != len(self.roles):
            found.append("duplicate role names")
        node_idents = {node.ident for node in self.nodes}
        if len(node_idents) != len(self.nodes):
            found.append("duplicate node idents")
        for node in self.nodes:
            for task in node.tasks:
                if task.role not in role_names:
                    found.append(
                        f"node {node.ident} references unknown role {task.role!r}"
                    )
                    continue
                try:
                    self.method_of(task)
                except KeyError:
                    found.append(
                        f"node {node.ident}: role {task.role!r} has no method "
                        f"{task.method_ident!r}"
                    )
        for edge in self.edges:
            if edge.source not in node_idents:
                found.append(f"edge from unknown node {edge.source!r}")
            if edge.target not in node_idents:
                found.append(f"edge to unknown node {edge.target!r}")
        if not self.start_nodes:
            found.append("assembly has no start node")
        if not self.end_nodes:
            found.append("assembly has no end node")
        # Start nodes must construct something: every alternative must be a
        # constructor of its role.
        for node in self.start_nodes:
            for task in node.tasks:
                try:
                    method = self.method_of(task)
                except KeyError:
                    continue
                if not method.is_constructor:
                    found.append(
                        f"start node {node.ident} task {task.render()} is not "
                        "a constructor"
                    )
        return tuple(found)

    def validate(self) -> "AssemblySpec":
        problems = self.problems()
        if problems:
            raise SpecValidationError(list(problems))
        return self

    def stats(self) -> Dict[str, int]:
        return {
            "roles": len(self.roles),
            "nodes": len(self.nodes),
            "links": len(self.edges),
        }

    def describe(self) -> str:
        counts = self.stats()
        roles = ", ".join(self.role_names)
        return (
            f"assembly {self.name} [{roles}] — {counts['nodes']} nodes, "
            f"{counts['links']} links"
        )
