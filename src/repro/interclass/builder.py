"""Fluent construction of assembly specifications.

Mirrors :class:`~repro.tspec.builder.SpecBuilder`, one level up: roles are
declared from self-testable classes (their embedded ``__tspec__`` is the
role's spec), nodes list qualified tasks as ``"role.MethodName"`` strings,
and :meth:`AssemblyBuilder.build` validates the result.

Example::

    assembly = (
        AssemblyBuilder("Warehouse")
        .role("provider", Provider)
        .role("product", Product)
        .node("new_provider", ["provider.Provider"], start=True)
        .node("new_product", ["product.Product"])
        ...
        .edge("new_provider", "new_product")
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..core.errors import SpecError
from ..tspec.model import ClassSpec
from .model import (
    AssemblyEdgeSpec,
    AssemblyNodeSpec,
    AssemblySpec,
    QualifiedTask,
    RoleSpec,
)


class AssemblyBuilder:
    """Accumulates roles, nodes and edges into an :class:`AssemblySpec`."""

    def __init__(self, name: str):
        self._name = name
        self._roles: List[RoleSpec] = []
        self._nodes: List[AssemblyNodeSpec] = []
        self._edges: List[AssemblyEdgeSpec] = []
        self._aliases: Dict[str, str] = {}

    # -- roles ------------------------------------------------------------

    def role(self, name: str,
             component: Union[type, ClassSpec]) -> "AssemblyBuilder":
        """Declare a role from a self-testable class or an explicit spec."""
        if any(existing.name == name for existing in self._roles):
            raise SpecError(f"role {name!r} already declared")
        if isinstance(component, ClassSpec):
            spec = component
        else:
            spec = getattr(component, "__tspec__", None)
            if spec is None:
                raise SpecError(
                    f"{component!r} is not self-testable (no embedded __tspec__); "
                    "pass its ClassSpec explicitly"
                )
        self._roles.append(RoleSpec(name=name, class_spec=spec))
        return self

    def _resolve_task(self, text: str) -> QualifiedTask:
        """``"role.MethodName"`` → every matching method ident of that role."""
        if "." not in text:
            raise SpecError(
                f"task {text!r} must be qualified as 'role.MethodName'"
            )
        role_name, _, method_name = text.partition(".")
        role = next((r for r in self._roles if r.name == role_name), None)
        if role is None:
            raise SpecError(f"unknown role {role_name!r} in task {text!r}")
        matches = [
            method.ident for method in role.class_spec.methods
            if method.name == method_name
        ]
        if not matches:
            raise SpecError(
                f"role {role_name!r} ({role.class_spec.name}) has no method "
                f"named {method_name!r}"
            )
        if len(matches) > 1:
            # Overloads: the caller gets all of them as one node's
            # alternatives via node(); here a single task must be unique.
            raise SpecError(
                f"method name {method_name!r} is overloaded in role "
                f"{role_name!r}; list the alternatives separately in node()"
            )
        return QualifiedTask(role=role_name, method_ident=matches[0])

    def _resolve_tasks(self, texts: Sequence[str]) -> List[QualifiedTask]:
        tasks: List[QualifiedTask] = []
        for text in texts:
            role_name, _, method_name = text.partition(".")
            role = next((r for r in self._roles if r.name == role_name), None)
            if role is not None:
                matches = [
                    method.ident for method in role.class_spec.methods
                    if method.name == method_name
                ]
                if len(matches) > 1:
                    tasks.extend(
                        QualifiedTask(role=role_name, method_ident=ident)
                        for ident in matches
                    )
                    continue
            tasks.append(self._resolve_task(text))
        return tasks

    # -- model -------------------------------------------------------------

    def node(self, alias: str, tasks: Sequence[str],
             start: bool = False, end: bool = False) -> "AssemblyBuilder":
        if alias in self._aliases:
            raise SpecError(f"node alias {alias!r} already used")
        ident = f"a{len(self._nodes) + 1}"
        self._aliases[alias] = ident
        self._nodes.append(
            AssemblyNodeSpec(
                ident=ident,
                tasks=tuple(self._resolve_tasks(tasks)),
                is_start=start,
                is_end=end,
            )
        )
        return self

    def edge(self, source_alias: str, target_alias: str) -> "AssemblyBuilder":
        try:
            source = self._aliases[source_alias]
            target = self._aliases[target_alias]
        except KeyError as missing:
            raise SpecError(f"unknown node alias {missing.args[0]!r}") from None
        self._edges.append(AssemblyEdgeSpec(source=source, target=target))
        return self

    def chain(self, *aliases: str) -> "AssemblyBuilder":
        for source, target in zip(aliases, aliases[1:]):
            self.edge(source, target)
        return self

    def node_ident(self, alias: str) -> str:
        return self._aliases[alias]

    def build(self, check: bool = True) -> AssemblySpec:
        spec = AssemblySpec(
            name=self._name,
            roles=tuple(self._roles),
            nodes=tuple(self._nodes),
            edges=tuple(self._edges),
        )
        if check:
            return spec.validate()
        return spec
