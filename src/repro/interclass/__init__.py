"""Interclass testing: assemblies of several self-testable classes.

Implements the paper's stated future work (sec. 6): extending the approach
"for components having more than one class", focusing on interactions
*between* classes rather than among the methods of one class.
"""

from .builder import AssemblyBuilder
from .executor import AssemblyExecutor
from .generator import (
    AssemblyGraph,
    InterclassDriverGenerator,
    InterclassStep,
    InterclassSuite,
    InterclassTestCase,
    RoleRef,
)
from .model import (
    AssemblyEdgeSpec,
    AssemblyNodeSpec,
    AssemblySpec,
    QualifiedTask,
    RoleSpec,
)

__all__ = [
    "AssemblyBuilder",
    "AssemblyEdgeSpec",
    "AssemblyExecutor",
    "AssemblyGraph",
    "AssemblyNodeSpec",
    "AssemblySpec",
    "InterclassDriverGenerator",
    "InterclassStep",
    "InterclassSuite",
    "InterclassTestCase",
    "QualifiedTask",
    "RoleRef",
    "RoleSpec",
]
