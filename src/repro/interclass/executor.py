"""Execution of interclass test cases: one transaction, several objects.

The executor keeps a live object per role; construction steps instantiate
the role's class, other steps dispatch to the role's object, and
:class:`~repro.interclass.generator.RoleRef` arguments resolve to the live
object of the referenced role (or ``None`` when that role has not been
constructed on this path — pointer semantics).

Observability follows the intraclass harness: per-step observations plus a
final state that merges every participating object's reported state, so
interclass runs are comparable (golden-output style) across versions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..bit import access
from ..bit.reporter import StateReport, snapshot_value
from ..core.errors import ContractViolation, ExecutionError, SandboxTimeout
from ..harness.outcomes import (
    Observation,
    StepObservation,
    SuiteResult,
    TestResult,
    Verdict,
)
from .generator import InterclassStep, InterclassSuite, InterclassTestCase, RoleRef
from .model import AssemblySpec

StepGuard = Callable[..., Any]


def _plain_guard(function: Callable, *args, **kwargs) -> Any:
    return function(*args, **kwargs)


class AssemblyExecutor:
    """Runs interclass test cases against a set of role classes."""

    def __init__(self, assembly: AssemblySpec,
                 role_classes: Mapping[str, type],
                 check_invariants: bool = True,
                 step_guard: Optional[StepGuard] = None):
        missing = [name for name in assembly.role_names if name not in role_classes]
        if missing:
            raise ExecutionError(
                f"no class bound for roles: {', '.join(missing)}"
            )
        for name, klass in role_classes.items():
            if not isinstance(klass, type):
                raise ExecutionError(f"role {name!r} is bound to {klass!r}, not a class")
        self._assembly = assembly
        self._classes: Dict[str, type] = dict(role_classes)
        self._check_invariants = check_invariants
        self._guard: StepGuard = step_guard or _plain_guard

    # ------------------------------------------------------------------

    def run_suite(self, suite: InterclassSuite) -> SuiteResult:
        results = tuple(self.run_case(case) for case in suite.cases)
        return SuiteResult(class_name=self._assembly.name, results=results)

    def run_case(self, case: InterclassTestCase) -> TestResult:
        with access.test_mode():
            return self._run(case)

    # ------------------------------------------------------------------

    def _run(self, case: InterclassTestCase) -> TestResult:
        instances: Dict[str, Any] = {}
        observations: List[StepObservation] = []
        current_call = "<none>"
        try:
            for step in case.steps:
                current_call = self._describe(step)
                self._execute_step(step, instances, observations)
                self._check_invariant(instances.get(step.role))
        except ContractViolation as violation:
            observations.append(Observation.of_raise(current_call, violation))
            return self._result(case, instances, observations,
                                Verdict.CONTRACT_VIOLATION, str(violation),
                                current_call)
        except SandboxTimeout as timeout:
            observations.append(Observation.of_raise(current_call, timeout))
            return self._result(case, instances, observations, Verdict.TIMEOUT,
                                str(timeout), current_call)
        except Exception as error:
            observations.append(Observation.of_raise(current_call, error))
            return self._result(case, instances, observations, Verdict.CRASH,
                                f"{type(error).__name__}: {error}", current_call)
        return self._result(case, instances, observations, Verdict.PASS, "", "")

    def _execute_step(self, step: InterclassStep, instances: Dict[str, Any],
                      observations: List[StepObservation]) -> None:
        arguments = tuple(
            instances.get(argument.role) if isinstance(argument, RoleRef)
            else argument
            for argument in step.arguments
        )
        if step.is_construction:
            if step.role in instances:
                raise ExecutionError(
                    f"role {step.role!r} constructed twice in one transaction"
                )
            instance = self._guard(self._classes[step.role], *arguments)
            instances[step.role] = instance
            observations.append(
                StepObservation(f"{step.role}.{step.method_name}",
                                "return", "<constructed>")
            )
            return
        if step.is_destruction:
            instance = instances.get(step.role)
            teardown = getattr(instance, "dispose", None)
            detail = "<deleted>"
            if callable(teardown):
                detail = snapshot_value(self._guard(teardown))
            observations.append(
                StepObservation(f"{step.role}.<destruction>", "return", detail)
            )
            return
        instance = instances.get(step.role)
        if instance is None:
            raise ExecutionError(
                f"step {step.format()} runs before role {step.role!r} exists"
            )
        method = getattr(instance, step.method_name, None)
        if not callable(method):
            raise ExecutionError(
                f"{type(instance).__name__} has no method {step.method_name!r}"
            )
        result = self._guard(method, *arguments)
        observations.append(
            StepObservation(f"{step.role}.{step.method_name}",
                            "return", snapshot_value(result))
        )

    def _check_invariant(self, instance: Any) -> None:
        if not self._check_invariants or instance is None:
            return
        checker = getattr(instance, "invariant_test", None)
        if callable(checker):
            self._guard(checker)

    def _result(self, case: InterclassTestCase, instances: Dict[str, Any],
                observations: List[StepObservation], verdict: Verdict,
                detail: str, failing: str) -> TestResult:
        final_state = self._merged_state(instances)
        return TestResult(
            case_ident=case.ident,
            class_name=self._assembly.name,
            verdict=verdict,
            observation=Observation(steps=tuple(observations),
                                    final_state=final_state),
            detail=detail,
            failing_method=failing,
        )

    def _merged_state(self, instances: Dict[str, Any]) -> Optional[StateReport]:
        """One report whose entries are ``role.attribute`` pairs."""
        if not instances:
            return None
        merged: List[Tuple[str, Any]] = []
        for role in sorted(instances):
            try:
                report = self._guard(StateReport.capture, instances[role])
            except Exception:
                merged.append((f"{role}.<capture-failed>", True))
                continue
            for name, value in report.state:
                merged.append((f"{role}.{name}", value))
        return StateReport(class_name=self._assembly.name, state=tuple(merged))

    @staticmethod
    def _describe(step: InterclassStep) -> str:
        return step.format()
