"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments without the `wheel` package (no PEP 660 backend)."""

from setuptools import setup

setup()
